//! Permutations of register indices.
//!
//! The anonymity adversary equips each process with a permutation over the
//! physical register indices `{0, …, m-1}`.  [`Permutation`] stores the
//! forward map (`local name → physical index`) and validates totality and
//! bijectivity on construction.

use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Error returned when a vector of indices is not a permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationError {
    /// An index was out of range `0..m`.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The domain size.
        size: usize,
    },
    /// Some physical index appeared twice (and thus another not at all).
    Duplicate {
        /// The duplicated physical index.
        index: usize,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::OutOfRange { index, size } => {
                write!(
                    f,
                    "index {index} out of range for permutation of size {size}"
                )
            }
            PermutationError::Duplicate { index } => {
                write!(f, "physical index {index} appears more than once")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A bijection on `{0, …, m-1}` mapping a process's local register names to
/// physical register indices.
///
/// # Example
///
/// ```
/// use amx_registers::Permutation;
/// let f = Permutation::rotation(5, 2);
/// assert_eq!(f.apply(0), 2);
/// assert_eq!(f.apply(4), 1);
/// assert_eq!(f.inverse().apply(2), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `m` indices.
    #[must_use]
    pub fn identity(m: usize) -> Self {
        Permutation {
            forward: (0..m).collect(),
        }
    }

    /// The clockwise rotation by `k`: local `x` maps to `(x + k) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn rotation(m: usize, k: usize) -> Self {
        assert!(m > 0, "rotation of empty domain");
        Permutation {
            forward: (0..m).map(|x| (x + k) % m).collect(),
        }
    }

    /// A uniformly random permutation of `m` indices from `seed`.
    #[must_use]
    pub fn random(m: usize, seed: u64) -> Self {
        let mut forward: Vec<usize> = (0..m).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        forward.shuffle(&mut rng);
        Permutation { forward }
    }

    /// Builds a permutation from the forward map `local → physical`.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError`] when `forward` is not a bijection on
    /// `0..forward.len()`.
    pub fn from_forward(forward: Vec<usize>) -> Result<Self, PermutationError> {
        let m = forward.len();
        let mut seen = vec![false; m];
        for &idx in &forward {
            if idx >= m {
                return Err(PermutationError::OutOfRange {
                    index: idx,
                    size: m,
                });
            }
            if seen[idx] {
                return Err(PermutationError::Duplicate { index: idx });
            }
            seen[idx] = true;
        }
        Ok(Permutation { forward })
    }

    /// Domain size `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for the (degenerate) permutation on an empty domain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Applies the permutation: physical index for local name `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    #[must_use]
    pub fn apply(&self, x: usize) -> usize {
        self.forward[x]
    }

    /// Returns the inverse permutation (physical → local).
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0; self.forward.len()];
        for (local, &phys) in self.forward.iter().enumerate() {
            inv[phys] = local;
        }
        Permutation { forward: inv }
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "size mismatch in composition");
        Permutation {
            forward: (0..other.len())
                .map(|x| self.apply(other.apply(x)))
                .collect(),
        }
    }

    /// The forward map as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.forward
    }

    /// `true` when this is the identity map.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(i, &v)| i == v)
    }
}

/// Every permutation of `{0, …, m-1}`, in a deterministic order with the
/// identity first (Heap's algorithm).
///
/// Feeds the adversary-orbit enumeration in [`crate::orbit`]; `m!` grows
/// fast, so callers cap `m` (the enumerator bounds its total work).
///
/// # Example
///
/// ```
/// use amx_registers::permutation::all_permutations;
/// let perms = all_permutations(3);
/// assert_eq!(perms.len(), 6);
/// assert!(perms[0].is_identity());
/// ```
///
/// # Panics
///
/// Panics if `m > 12` (13! overflows practical memory long before that).
#[must_use]
pub fn all_permutations(m: usize) -> Vec<Permutation> {
    assert!(m <= 12, "m! permutations do not fit in memory for m > 12");
    let mut out = Vec::new();
    let mut work: Vec<usize> = (0..m).collect();
    heap_permute(&mut work, m, &mut out);
    out
}

fn heap_permute(work: &mut [usize], k: usize, out: &mut Vec<Permutation>) {
    if k <= 1 {
        out.push(Permutation {
            forward: work.to_vec(),
        });
        return;
    }
    for i in 0..k {
        heap_permute(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.forward)
    }
}

impl TryFrom<Vec<usize>> for Permutation {
    type Error = PermutationError;

    fn try_from(forward: Vec<usize>) -> Result<Self, Self::Error> {
        Permutation::from_forward(forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(6);
        assert!(p.is_identity());
        for x in 0..6 {
            assert_eq!(p.apply(x), x);
        }
    }

    #[test]
    fn rotation_wraps() {
        let p = Permutation::rotation(5, 7); // k > m is fine
        for x in 0..5 {
            assert_eq!(p.apply(x), (x + 7) % 5);
        }
        assert!(Permutation::rotation(5, 0).is_identity());
        assert!(Permutation::rotation(5, 5).is_identity());
    }

    #[test]
    #[should_panic(expected = "rotation of empty domain")]
    fn rotation_of_empty_domain_panics() {
        let _ = Permutation::rotation(0, 1);
    }

    #[test]
    fn from_forward_validates() {
        assert!(Permutation::from_forward(vec![2, 0, 1]).is_ok());
        assert_eq!(
            Permutation::from_forward(vec![0, 3, 1]),
            Err(PermutationError::OutOfRange { index: 3, size: 3 })
        );
        assert_eq!(
            Permutation::from_forward(vec![0, 1, 1]),
            Err(PermutationError::Duplicate { index: 1 })
        );
        assert!(Permutation::from_forward(vec![]).is_ok());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::random(9, 42);
        let inv = p.inverse();
        for x in 0..9 {
            assert_eq!(inv.apply(p.apply(x)), x);
            assert_eq!(p.apply(inv.apply(x)), x);
        }
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let p = Permutation::random(8, 3);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn compose_order_matters() {
        let r1 = Permutation::rotation(5, 1);
        let swap = Permutation::from_forward(vec![1, 0, 2, 3, 4]).unwrap();
        let a = r1.compose(&swap);
        let b = swap.compose(&r1);
        assert_ne!(a, b);
        // a = r1 ∘ swap: apply swap first.
        assert_eq!(a.apply(0), r1.apply(swap.apply(0)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Permutation::random(16, 5), Permutation::random(16, 5));
        assert_ne!(Permutation::random(16, 5), Permutation::random(16, 6));
    }

    #[test]
    fn random_is_a_bijection() {
        for seed in 0..20 {
            let p = Permutation::random(12, seed);
            let mut image: Vec<usize> = (0..12).map(|x| p.apply(x)).collect();
            image.sort_unstable();
            assert_eq!(image, (0..12).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_permutations_is_complete_and_distinct() {
        for m in 0..=5usize {
            let perms = all_permutations(m);
            let expected: usize = (1..=m).product::<usize>().max(1);
            assert_eq!(perms.len(), expected, "m = {m}");
            let mut seen: Vec<&[usize]> = perms.iter().map(Permutation::as_slice).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), expected, "duplicates for m = {m}");
            if m > 0 {
                assert!(perms[0].is_identity(), "identity must come first");
            }
        }
    }

    #[test]
    fn error_display_nonempty() {
        let e = PermutationError::OutOfRange { index: 9, size: 3 };
        assert!(!e.to_string().is_empty());
        let e = PermutationError::Duplicate { index: 1 };
        assert!(!e.to_string().is_empty());
    }
}
