//! Shared-memory operation counters.
//!
//! The complexity experiments (EXPERIMENTS.md, experiment C1) compare how
//! much work each algorithm does per critical-section entry.  Handles
//! update an [`OpCounters`] on every primitive operation; counters are
//! plain relaxed atomics, cheap enough to leave enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative counts of primitive shared-memory operations.
///
/// Cloning shares the underlying counters (handles and their memory hold
/// the same instance).
///
/// # Example
///
/// ```
/// use amx_registers::OpCounters;
/// let c = OpCounters::new();
/// c.record_read();
/// c.record_write();
/// c.record_write();
/// assert_eq!(c.reads(), 1);
/// assert_eq!(c.writes(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpCounters {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    reads: AtomicU64,
    writes: AtomicU64,
    cas: AtomicU64,
    snapshots: AtomicU64,
    collect_rounds: AtomicU64,
}

impl OpCounters {
    /// Creates a fresh set of zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one atomic register read.
    pub fn record_read(&self) {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one atomic register write.
    pub fn record_write(&self) {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one compare&swap invocation (successful or not).
    pub fn record_cas(&self) {
        self.inner.cas.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed snapshot operation.
    pub fn record_snapshot(&self) {
        self.inner.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one collect round performed inside a snapshot.
    pub fn record_collect_round(&self) {
        self.inner.collect_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Total reads recorded.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.inner.reads.load(Ordering::Relaxed)
    }

    /// Total writes recorded.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.inner.writes.load(Ordering::Relaxed)
    }

    /// Total compare&swap operations recorded.
    #[must_use]
    pub fn cas_ops(&self) -> u64 {
        self.inner.cas.load(Ordering::Relaxed)
    }

    /// Total snapshots recorded.
    #[must_use]
    pub fn snapshots(&self) -> u64 {
        self.inner.snapshots.load(Ordering::Relaxed)
    }

    /// Total collect rounds recorded across all snapshots.
    #[must_use]
    pub fn collect_rounds(&self) -> u64 {
        self.inner.collect_rounds.load(Ordering::Relaxed)
    }

    /// Sum of all primitive operations (reads + writes + cas).
    #[must_use]
    pub fn total_primitive_ops(&self) -> u64 {
        self.reads() + self.writes() + self.cas_ops()
    }

    /// Adds every count from `other` into this counter set (used to
    /// aggregate per-participant counters into a per-run total).
    pub fn merge(&self, other: &OpCounters) {
        self.inner.reads.fetch_add(other.reads(), Ordering::Relaxed);
        self.inner
            .writes
            .fetch_add(other.writes(), Ordering::Relaxed);
        self.inner.cas.fetch_add(other.cas_ops(), Ordering::Relaxed);
        self.inner
            .snapshots
            .fetch_add(other.snapshots(), Ordering::Relaxed);
        self.inner
            .collect_rounds
            .fetch_add(other.collect_rounds(), Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
        self.inner.cas.store(0, Ordering::Relaxed);
        self.inner.snapshots.store(0, Ordering::Relaxed);
        self.inner.collect_rounds.store(0, Ordering::Relaxed);
    }

    /// One coherent-enough copy of all five counts (each counter read
    /// once, relaxed), for reporting after the measured threads joined.
    ///
    /// Named `snapshot_counts` to avoid confusion with *register*
    /// snapshots (which [`snapshots`](Self::snapshots) tallies).
    #[must_use]
    pub fn snapshot_counts(&self) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            cas_ops: self.cas_ops(),
            snapshots: self.snapshots(),
            collect_rounds: self.collect_rounds(),
        }
    }
}

/// A plain-value copy of an [`OpCounters`] reading, detached from the
/// shared atomics — subtractable, serializable, safe to hold across a
/// run boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Atomic register reads.
    pub reads: u64,
    /// Atomic register writes.
    pub writes: u64,
    /// Compare&swap invocations (successful or not).
    pub cas_ops: u64,
    /// Completed register-array snapshot operations.
    pub snapshots: u64,
    /// Collect rounds performed inside those snapshots.
    pub collect_rounds: u64,
}

impl OpSnapshot {
    /// Sum of all primitive operations (reads + writes + cas).
    #[must_use]
    pub fn total_primitive_ops(&self) -> u64 {
        self.reads + self.writes + self.cas_ops
    }

    /// Per-field saturating difference `self - earlier`, for windowed
    /// measurements over a shared counter set.
    #[must_use]
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            cas_ops: self.cas_ops.saturating_sub(earlier.cas_ops),
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            collect_rounds: self.collect_rounds.saturating_sub(earlier.collect_rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = OpCounters::new();
        c.record_read();
        c.record_write();
        c.record_cas();
        c.record_snapshot();
        c.record_collect_round();
        c.record_collect_round();
        assert_eq!(c.reads(), 1);
        assert_eq!(c.writes(), 1);
        assert_eq!(c.cas_ops(), 1);
        assert_eq!(c.snapshots(), 1);
        assert_eq!(c.collect_rounds(), 2);
        assert_eq!(c.total_primitive_ops(), 3);
        c.reset();
        assert_eq!(c.total_primitive_ops(), 0);
        assert_eq!(c.snapshots(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = OpCounters::new();
        let b = OpCounters::new();
        a.record_read();
        b.record_read();
        b.record_cas();
        a.merge(&b);
        assert_eq!(a.reads(), 2);
        assert_eq!(a.cas_ops(), 1);
        assert_eq!(b.reads(), 1, "merge must not mutate the source");
    }

    #[test]
    fn clones_share_state() {
        let c = OpCounters::new();
        let d = c.clone();
        c.record_write();
        d.record_write();
        assert_eq!(c.writes(), 2);
        assert_eq!(d.writes(), 2);
    }

    #[test]
    fn snapshot_counts_detach_and_subtract() {
        let c = OpCounters::new();
        c.record_read();
        c.record_write();
        let before = c.snapshot_counts();
        c.record_read();
        c.record_cas();
        let after = c.snapshot_counts();
        let delta = after.since(&before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 0);
        assert_eq!(delta.cas_ops, 1);
        assert_eq!(delta.total_primitive_ops(), 2);
        // The detached copy does not move with the live counters.
        c.record_read();
        assert_eq!(after.reads, 2);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = OpCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_read();
                    }
                });
            }
        });
        assert_eq!(c.reads(), 4000);
    }
}
