//! Anonymous read/modify/write memory.
//!
//! The RMW model (paper §I-C) extends read/write registers with an atomic
//! `compare&swap`.  Registers here hold bare slots (no sequence stamps —
//! Algorithm 2 never snapshots), so `compare&swap(x, old, new)` compares
//! against exactly the stored slot value.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amx_ids::codec::{decode_slot, encode_slot};
use amx_ids::{Pid, Slot};

use crate::permutation::Permutation;
use crate::stats::OpCounters;

/// A shared array of `m` anonymous atomic read/modify/write registers,
/// all initialized to ⊥.
///
/// # Example
///
/// ```
/// use amx_ids::{PidPool, Slot};
/// use amx_registers::{AnonymousRmwMemory, Permutation};
///
/// let mem = AnonymousRmwMemory::new(3);
/// let me = PidPool::sequential().mint();
/// let h = mem.handle(me, Permutation::identity(3));
/// assert!(h.compare_and_swap(0, Slot::BOTTOM, Slot::from(me)));
/// assert!(!h.compare_and_swap(0, Slot::BOTTOM, Slot::from(me))); // already taken
/// assert!(h.read(0).is_owned_by(me));
/// ```
#[derive(Debug, Clone)]
pub struct AnonymousRmwMemory {
    cells: Arc<Vec<AtomicU64>>,
}

impl AnonymousRmwMemory {
    /// Allocates `m` registers, all ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "anonymous memory needs at least one register");
        AnonymousRmwMemory {
            cells: Arc::new((0..m).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Never true.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Creates the access handle for process `id` with `permutation`.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the memory size.
    #[must_use]
    pub fn handle(&self, id: Pid, permutation: Permutation) -> RmwHandle {
        self.handle_with_counters(id, permutation, OpCounters::new())
    }

    /// Like [`handle`](Self::handle) but recording into shared counters.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the memory size.
    #[must_use]
    pub fn handle_with_counters(
        &self,
        id: Pid,
        permutation: Permutation,
        counters: OpCounters,
    ) -> RmwHandle {
        assert_eq!(
            permutation.len(),
            self.cells.len(),
            "permutation size must match memory size"
        );
        RmwHandle {
            cells: Arc::clone(&self.cells),
            perm: permutation,
            id,
            counters,
        }
    }

    /// Omniscient read of physical register `phys` (harness use only).
    #[must_use]
    pub fn observe(&self, phys: usize) -> Slot {
        decode_slot(self.cells[phys].load(Ordering::SeqCst))
    }

    /// Omniscient collect in physical order (harness use only).
    #[must_use]
    pub fn observe_all(&self) -> Vec<Slot> {
        (0..self.len()).map(|i| self.observe(i)).collect()
    }
}

/// Per-process access handle to an [`AnonymousRmwMemory`].
pub struct RmwHandle {
    cells: Arc<Vec<AtomicU64>>,
    perm: Permutation,
    id: Pid,
    counters: OpCounters,
}

impl fmt::Debug for RmwHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RmwHandle")
            .field("id", &self.id)
            .field("perm", &self.perm)
            .finish_non_exhaustive()
    }
}

impl RmwHandle {
    /// The identity of the process owning this handle.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.id
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Never true.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operation counters attached to this handle.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn phys(&self, x: usize) -> &AtomicU64 {
        &self.cells[self.perm.apply(x)]
    }

    /// `R.read(x)`: atomically reads the register locally named `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    #[must_use]
    pub fn read(&self, x: usize) -> Slot {
        self.counters.record_read();
        decode_slot(self.phys(x).load(Ordering::SeqCst))
    }

    /// `R.write(x, v)`: atomically writes `v`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    pub fn write(&self, x: usize, v: Slot) {
        self.counters.record_write();
        self.phys(x).store(encode_slot(v), Ordering::SeqCst);
    }

    /// `R.compare&swap(x, old, new)`: atomically, if the register locally
    /// named `x` holds `old`, replace it with `new` and return `true`;
    /// otherwise leave it unchanged and return `false`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    pub fn compare_and_swap(&self, x: usize, old: Slot, new: Slot) -> bool {
        self.counters.record_cas();
        self.phys(x)
            .compare_exchange(
                encode_slot(old),
                encode_slot(new),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Reads all registers once, in local-name order (Algorithm 2's
    /// asynchronous view — not a snapshot).
    #[must_use]
    pub fn collect(&self) -> Vec<Slot> {
        (0..self.len()).map(|x| self.read(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;

    #[test]
    fn cas_from_bottom() {
        let mem = AnonymousRmwMemory::new(3);
        let mut pool = PidPool::sequential();
        let (a, b) = (pool.mint(), pool.mint());
        let ha = mem.handle(a, Permutation::identity(3));
        let hb = mem.handle(b, Permutation::identity(3));
        assert!(ha.compare_and_swap(0, Slot::BOTTOM, Slot::from(a)));
        assert!(!hb.compare_and_swap(0, Slot::BOTTOM, Slot::from(b)));
        assert!(hb.read(0).is_owned_by(a));
    }

    #[test]
    fn cas_release() {
        let mem = AnonymousRmwMemory::new(2);
        let id = PidPool::sequential().mint();
        let h = mem.handle(id, Permutation::identity(2));
        assert!(h.compare_and_swap(1, Slot::BOTTOM, Slot::from(id)));
        assert!(h.compare_and_swap(1, Slot::from(id), Slot::BOTTOM));
        assert!(h.read(1).is_bottom());
    }

    #[test]
    fn cas_respects_permutation() {
        let mem = AnonymousRmwMemory::new(4);
        let mut pool = PidPool::sequential();
        let a = pool.mint();
        let h = mem.handle(a, Permutation::rotation(4, 2));
        assert!(h.compare_and_swap(0, Slot::BOTTOM, Slot::from(a)));
        assert!(mem.observe(2).is_owned_by(a));
        assert!(mem.observe(0).is_bottom());
    }

    #[test]
    fn plain_write_overwrites_anything() {
        let mem = AnonymousRmwMemory::new(2);
        let mut pool = PidPool::sequential();
        let (a, b) = (pool.mint(), pool.mint());
        let ha = mem.handle(a, Permutation::identity(2));
        let hb = mem.handle(b, Permutation::identity(2));
        ha.write(0, Slot::from(a));
        hb.write(0, Slot::from(b));
        assert!(ha.read(0).is_owned_by(b));
    }

    #[test]
    fn collect_orders_by_local_name() {
        let mem = AnonymousRmwMemory::new(3);
        let mut pool = PidPool::sequential();
        let a = pool.mint();
        let h = mem.handle(a, Permutation::rotation(3, 1));
        h.write(0, Slot::from(a)); // physical 1
        let view = h.collect();
        assert!(view[0].is_owned_by(a));
        assert!(view[1].is_bottom());
        assert!(mem.observe(1).is_owned_by(a));
    }

    #[test]
    fn concurrent_cas_grants_each_register_once() {
        // n threads race to CAS ⊥→id on every register; each register must
        // end owned by exactly one thread, and the total number of
        // successful CAS operations must equal m.
        let m = 7;
        let mem = AnonymousRmwMemory::new(m);
        let ids = PidPool::sequential().mint_many(4);
        let mut wins = [0usize; 4];
        std::thread::scope(|s| {
            let handles: Vec<_> = ids
                .iter()
                .enumerate()
                .map(|(t, &id)| {
                    let h = mem.handle(id, Permutation::rotation(m, t));
                    s.spawn(move || {
                        let mut won = 0;
                        for x in 0..m {
                            if h.compare_and_swap(x, Slot::BOTTOM, Slot::from(id)) {
                                won += 1;
                            }
                        }
                        won
                    })
                })
                .collect();
            for (t, jh) in handles.into_iter().enumerate() {
                wins[t] = jh.join().unwrap();
            }
        });
        assert_eq!(wins.iter().sum::<usize>(), m);
        let final_view = mem.observe_all();
        assert!(final_view.iter().all(|s| !s.is_bottom()));
        for (t, &id) in ids.iter().enumerate() {
            let owned = final_view.iter().filter(|s| s.is_owned_by(id)).count();
            assert_eq!(owned, wins[t], "thread {t} ownership mismatch");
        }
    }

    #[test]
    fn counters_record_cas() {
        let mem = AnonymousRmwMemory::new(2);
        let id = PidPool::sequential().mint();
        let c = OpCounters::new();
        let h = mem.handle_with_counters(id, Permutation::identity(2), c.clone());
        let _ = h.compare_and_swap(0, Slot::BOTTOM, Slot::from(id));
        let _ = h.compare_and_swap(0, Slot::BOTTOM, Slot::from(id));
        assert_eq!(c.cas_ops(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_sized_memory_panics() {
        let _ = AnonymousRmwMemory::new(0);
    }
}
