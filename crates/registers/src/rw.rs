//! Anonymous read/write memory with linearizable snapshots.
//!
//! Each physical register is one `AtomicU64` holding a `(sequence, slot)`
//! pair (see [`amx_ids::codec`]).  Per the paper (§II-B), every write by a
//! process carries that process's next local sequence number; because no
//! two processes share an identity, each write's stored word is unique
//! among all writes ever applied to that register — which is exactly what
//! the double-collect snapshot needs to detect intervening writes.
//!
//! `snapshot()` repeatedly collects the whole array until two consecutive
//! collects return identical stamped words.  This satisfies the paper's
//! progress condition (1): if no process writes during the snapshot, two
//! collects suffice.  Under active contention the operation retries; the
//! bounded variant [`RwHandle::try_snapshot`] surfaces livelock to callers
//! that want to inject failure.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amx_ids::codec::{decode_stamped, encode_stamped};
use amx_ids::{Pid, Slot};

use crate::permutation::Permutation;
use crate::stats::OpCounters;

/// Error returned by [`RwHandle::try_snapshot`] when the bounded
/// double-collect could not observe a quiescent pair of collects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Number of collect rounds attempted.
    pub rounds: usize,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot did not stabilize within {} collect rounds",
            self.rounds
        )
    }
}

impl std::error::Error for SnapshotError {}

/// A shared array of `m` anonymous atomic read/write registers.
///
/// All registers are initialized to ⊥.  Processes access the array through
/// per-process [`RwHandle`]s carrying their adversary-chosen permutation.
///
/// # Example
///
/// ```
/// use amx_ids::{PidPool, Slot};
/// use amx_registers::{AnonymousRwMemory, Permutation};
///
/// let mem = AnonymousRwMemory::new(5);
/// let me = PidPool::sequential().mint();
/// let h = mem.handle(me, Permutation::random(5, 1));
/// h.write(3, Slot::from(me));
/// assert!(h.read(3).is_owned_by(me));
/// assert_eq!(h.snapshot().iter().filter(|s| s.is_owned_by(me)).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AnonymousRwMemory {
    cells: Arc<Vec<AtomicU64>>,
}

impl AnonymousRwMemory {
    /// Allocates `m` registers, all initialized to ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; the model always has at least one register.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "anonymous memory needs at least one register");
        AnonymousRwMemory {
            cells: Arc::new((0..m).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Never true; kept for API completeness alongside [`len`](Self::len).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Creates the access handle for process `id`, which will address the
    /// array through `permutation`.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the memory size.
    #[must_use]
    pub fn handle(&self, id: Pid, permutation: Permutation) -> RwHandle {
        self.handle_with_counters(id, permutation, OpCounters::new())
    }

    /// Like [`handle`](Self::handle) but recording operations into the
    /// caller's counters.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the memory size.
    #[must_use]
    pub fn handle_with_counters(
        &self,
        id: Pid,
        permutation: Permutation,
        counters: OpCounters,
    ) -> RwHandle {
        assert_eq!(
            permutation.len(),
            self.cells.len(),
            "permutation size must match memory size"
        );
        RwHandle {
            cells: Arc::clone(&self.cells),
            perm: permutation,
            id,
            seq: Cell::new(0),
            counters,
        }
    }

    /// Reads the *physical* register `phys` (no permutation) — an
    /// omniscient-observer view used by harnesses and tests, never by
    /// algorithm code.
    #[must_use]
    pub fn observe(&self, phys: usize) -> Slot {
        decode_stamped(self.cells[phys].load(Ordering::SeqCst)).1
    }

    /// Omniscient collect of all physical registers, in physical order.
    #[must_use]
    pub fn observe_all(&self) -> Vec<Slot> {
        (0..self.len()).map(|i| self.observe(i)).collect()
    }
}

/// Per-process access handle to an [`AnonymousRwMemory`].
///
/// A handle belongs to one process: it carries the process identity (used
/// to stamp writes), the adversary permutation, and the local write
/// sequence counter.  Handles are `Send` but intentionally not `Sync`.
pub struct RwHandle {
    cells: Arc<Vec<AtomicU64>>,
    perm: Permutation,
    id: Pid,
    seq: Cell<u32>,
    counters: OpCounters,
}

impl fmt::Debug for RwHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwHandle")
            .field("id", &self.id)
            .field("perm", &self.perm)
            .field("seq", &self.seq.get())
            .finish_non_exhaustive()
    }
}

impl RwHandle {
    /// The identity of the process owning this handle.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.id
    }

    /// Number of registers (the `m` of the model).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Never true.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operation counters attached to this handle.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn phys(&self, x: usize) -> &AtomicU64 {
        &self.cells[self.perm.apply(x)]
    }

    /// `R.read(x)`: atomically reads the register locally named `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    #[must_use]
    pub fn read(&self, x: usize) -> Slot {
        self.counters.record_read();
        decode_stamped(self.phys(x).load(Ordering::SeqCst)).1
    }

    /// `R.write(x, v)`: atomically writes `v` to the register locally
    /// named `x`, stamped with this process's next sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ m`.
    pub fn write(&self, x: usize, v: Slot) {
        self.counters.record_write();
        let next = self.seq.get().wrapping_add(1);
        self.seq.set(next);
        self.phys(x)
            .store(encode_stamped(next, v), Ordering::SeqCst);
    }

    /// One collect: reads every register once, in local-name order,
    /// returning stamped words.
    fn collect_stamped(&self) -> Vec<u64> {
        self.counters.record_collect_round();
        (0..self.len())
            .map(|x| {
                self.counters.record_read();
                self.phys(x).load(Ordering::SeqCst)
            })
            .collect()
    }

    /// An unordered, non-atomic read of all registers in local-name order
    /// (Algorithm 2's read loop — *not* a snapshot).
    #[must_use]
    pub fn collect(&self) -> Vec<Slot> {
        (0..self.len())
            .map(|x| {
                self.counters.record_read();
                decode_stamped(self.phys(x).load(Ordering::SeqCst)).1
            })
            .collect()
    }

    /// `R.snapshot()`: linearizable snapshot of all registers in
    /// local-name order, by unbounded double-collect.
    ///
    /// Terminates as soon as two consecutive collects observe identical
    /// stamped words; per the paper's progress condition (1) this is
    /// guaranteed once no process is writing.  Yields to the OS scheduler
    /// every few failed rounds to avoid starving the writers it is
    /// waiting out.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Slot> {
        let mut prev = self.collect_stamped();
        let mut rounds = 1usize;
        loop {
            let cur = self.collect_stamped();
            if cur == prev {
                self.counters.record_snapshot();
                return cur.into_iter().map(|w| decode_stamped(w).1).collect();
            }
            prev = cur;
            rounds += 1;
            if rounds.is_multiple_of(8) {
                std::thread::yield_now();
            }
        }
    }

    /// Bounded variant of [`snapshot`](Self::snapshot): gives up after
    /// `max_rounds` collect rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] when no two consecutive collects matched
    /// within the budget.
    pub fn try_snapshot(&self, max_rounds: usize) -> Result<Vec<Slot>, SnapshotError> {
        let mut prev = self.collect_stamped();
        for _ in 1..max_rounds {
            let cur = self.collect_stamped();
            if cur == prev {
                self.counters.record_snapshot();
                return Ok(cur.into_iter().map(|w| decode_stamped(w).1).collect());
            }
            prev = cur;
        }
        Err(SnapshotError { rounds: max_rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;

    fn two_handles(m: usize) -> (AnonymousRwMemory, RwHandle, RwHandle) {
        let mem = AnonymousRwMemory::new(m);
        let mut pool = PidPool::sequential();
        let (a, b) = (pool.mint(), pool.mint());
        let ha = mem.handle(a, Permutation::identity(m));
        let hb = mem.handle(b, Permutation::rotation(m, 1));
        (mem, ha, hb)
    }

    #[test]
    fn fresh_memory_is_all_bottom() {
        let (_mem, ha, _hb) = two_handles(5);
        for x in 0..5 {
            assert!(ha.read(x).is_bottom());
        }
        assert!(ha.snapshot().iter().all(|s| s.is_bottom()));
    }

    #[test]
    fn write_then_read_round_trip() {
        let (_mem, ha, _) = two_handles(4);
        let me = ha.id();
        ha.write(2, Slot::from(me));
        assert!(ha.read(2).is_owned_by(me));
        assert!(ha.read(0).is_bottom());
    }

    #[test]
    fn permutation_routes_to_physical_register() {
        let (mem, ha, hb) = two_handles(4);
        // ha uses identity, hb rotation by 1: hb local x → physical x+1.
        hb.write(0, Slot::from(hb.id()));
        assert!(mem.observe(1).is_owned_by(hb.id()));
        assert!(ha.read(1).is_owned_by(hb.id()));
        assert!(ha.read(0).is_bottom());
    }

    #[test]
    fn same_local_name_different_physical() {
        let (mem, ha, hb) = two_handles(3);
        ha.write(0, Slot::from(ha.id()));
        hb.write(0, Slot::from(hb.id()));
        assert!(mem.observe(0).is_owned_by(ha.id()));
        assert!(mem.observe(1).is_owned_by(hb.id()));
    }

    #[test]
    fn snapshot_is_in_local_name_order() {
        let (_mem, ha, hb) = two_handles(3);
        hb.write(0, Slot::from(hb.id())); // physical 1
        let snap_a = ha.snapshot();
        let snap_b = hb.snapshot();
        assert!(snap_a[1].is_owned_by(hb.id()));
        assert!(snap_b[0].is_owned_by(hb.id()));
    }

    #[test]
    fn overwrites_last_writer_wins() {
        let (_mem, ha, hb) = two_handles(3);
        ha.write(1, Slot::from(ha.id()));
        hb.write(0, Slot::from(hb.id())); // physical 1 too
        assert!(ha.read(1).is_owned_by(hb.id()));
        ha.write(1, Slot::BOTTOM);
        assert!(ha.read(1).is_bottom());
    }

    #[test]
    fn try_snapshot_succeeds_when_quiescent() {
        let (_mem, ha, _) = two_handles(6);
        ha.write(0, Slot::from(ha.id()));
        let snap = ha.try_snapshot(4).expect("quiescent memory must stabilize");
        assert!(snap[0].is_owned_by(ha.id()));
    }

    #[test]
    fn try_snapshot_error_display() {
        let e = SnapshotError { rounds: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn counters_record_operations() {
        let mem = AnonymousRwMemory::new(4);
        let id = PidPool::sequential().mint();
        let c = OpCounters::new();
        let h = mem.handle_with_counters(id, Permutation::identity(4), c.clone());
        h.write(0, Slot::from(id));
        let _ = h.read(0);
        let _ = h.snapshot();
        assert_eq!(c.writes(), 1);
        assert!(c.reads() > 8); // one read + ≥2 collects of 4
        assert_eq!(c.snapshots(), 1);
        assert!(c.collect_rounds() >= 2);
    }

    #[test]
    fn snapshot_under_concurrent_writers_is_a_real_state() {
        // Writers fill disjoint registers with their own ids; any snapshot
        // must show each register either ⊥ or the unique writer that owns
        // it (no torn or mixed values).
        let m = 8;
        let mem = AnonymousRwMemory::new(m);
        let mut pool = PidPool::sequential();
        let ids: Vec<Pid> = pool.mint_many(4);
        let reader = mem.handle(pool.mint(), Permutation::identity(m));
        std::thread::scope(|s| {
            for (t, &id) in ids.iter().enumerate() {
                let h = mem.handle(id, Permutation::identity(m));
                s.spawn(move || {
                    for round in 0..200 {
                        let x = (t * 2) + (round % 2);
                        h.write(x, Slot::from(id));
                        h.write(x, Slot::BOTTOM);
                    }
                });
            }
            for _ in 0..50 {
                let snap = reader.snapshot();
                for (x, slot) in snap.iter().enumerate() {
                    if let Some(p) = slot.pid() {
                        assert_eq!(p, ids[x / 2], "register {x} owned by wrong process");
                    }
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_sized_memory_panics() {
        let _ = AnonymousRwMemory::new(0);
    }

    #[test]
    #[should_panic(expected = "permutation size")]
    fn mismatched_permutation_panics() {
        let mem = AnonymousRwMemory::new(3);
        let id = PidPool::sequential().mint();
        let _ = mem.handle(id, Permutation::identity(4));
    }
}
