//! Adversary-orbit enumeration: one representative per equivalence
//! class of permutation assignments.
//!
//! The paper's theorems quantify over *every* adversary — every way of
//! handing each of `n` processes a private permutation of the `m`
//! register names, i.e. `(m!)ⁿ` assignments.  Most of them are
//! redundant for verification:
//!
//! * **Global register relabeling.**  Replacing every `f_i` by `g ∘ f_i`
//!   (one `g ∈ S_m` applied on the *physical* side) renames the physical
//!   registers wholesale.  No process can observe it, so the induced
//!   state graphs are isomorphic.
//! * **Process reordering.**  The algorithms under test are symmetric:
//!   processes differ only in their equality-only identity, so permuting
//!   which process holds which permutation relabels an isomorphic run.
//!
//! Two assignments in the same orbit of those two actions have the same
//! model-checking verdict, so exhaustive adversary sweeps only need one
//! representative per orbit: `m!ⁿ⁻¹`-ish classes instead of `m!ⁿ`
//! assignments — for `n = 2` exactly `(m! + i(m))/2` classes, where
//! `i(m)` counts the self-inverse permutations.  (Left-normalizing by
//! `g = f_1⁻¹` turns a 2-process assignment into `(id, h)`, and the
//! process swap then identifies `h` with `h⁻¹`.)
//!
//! Local-name relabelings (`f_i ∘ k`) are deliberately **not**
//! quotiented: the algorithms scan local names in a fixed order (sweeps,
//! free-slot policies), so a common local relabeling changes behaviour
//! and is a genuinely different adversary.
//!
//! # Example
//!
//! ```
//! use amx_registers::orbit::adversary_orbits;
//! // Two processes over three registers: (3!)² = 36 assignments, but
//! // only 5 genuinely different adversaries.
//! assert_eq!(adversary_orbits(2, 3).len(), 5);
//! ```

use crate::adversary::Adversary;
use crate::permutation::{all_permutations, Permutation};

/// The canonical representative of `perms`'s orbit under global register
/// relabeling and process reordering, as raw forward maps.
///
/// The representative is the lexicographically least image; equal
/// canonical forms ⇔ same orbit ⇔ isomorphic state graphs for any
/// symmetric algorithm.
///
/// The least image is found in `O(n²·m + n² log n)` rather than by the
/// old `m!·n!` scan: the first component of a lexicographically least
/// candidate is necessarily the identity (the relabeling `g` ranges over
/// all of `S_m`, so `g ∘ f_{π(0)} = id` is always achievable and nothing
/// beats it), which pins `g = f_{π(0)}⁻¹`; the remaining components are
/// then the fixed multiset `{f_{π(0)}⁻¹ ∘ f_k}`, whose least ordering is
/// just its sort.  Minimizing over the `n` choices of `π(0)` is exact —
/// and what makes the streamed orbit enumeration below feasible well
/// past the old `m ≤ 6` wall.
///
/// # Panics
///
/// Panics if `perms` is empty or its permutations have mismatched sizes.
#[must_use]
pub fn canonical_form(perms: &[Permutation]) -> Vec<Vec<usize>> {
    assert!(!perms.is_empty(), "need at least one process");
    let m = perms[0].len();
    assert!(
        perms.iter().all(|p| p.len() == m),
        "mismatched permutation sizes"
    );
    let n = perms.len();
    let mut best: Option<Vec<Vec<usize>>> = None;
    for j in 0..n {
        let g = perms[j].inverse();
        let mut tail: Vec<Vec<usize>> = (0..n)
            .filter(|&k| k != j)
            .map(|k| g.compose(&perms[k]).as_slice().to_vec())
            .collect();
        tail.sort_unstable();
        let mut candidate = Vec::with_capacity(n);
        candidate.push((0..m).collect::<Vec<usize>>());
        candidate.extend(tail);
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    }
    best.expect("nonempty search space")
}

/// Enumerates one [`Adversary`] per orbit for `n` symmetric processes
/// over `m` registers, in deterministic (lexicographic) order.
///
/// Every possible assignment is equivalent (same state graph up to
/// isomorphism) to exactly one returned adversary, so sweeping these
/// representatives *is* sweeping all `(m!)ⁿ` adversaries — at a tiny
/// fraction of the cost.
///
/// # Panics
///
/// Panics for `n == 0`, `m == 0`, and for parameter combinations whose
/// enumeration would be infeasibly large.  Candidates are streamed —
/// each left-normalized tuple is canonicalized in `O(n²·m)` and deduped
/// through a hash set of canonical forms, never materialized or sorted
/// wholesale — so the bound is `(m!)ⁿ⁻¹ · n²·m` elementary steps
/// (capped at ~2.5·10⁸).  That admits the full `M(2)` range through
/// `m = 7` (and beyond: `n = 2` is feasible to `m ≤ 10`, `n = 3` to
/// `m = 6`, `n = 4` to `m = 5`); `n = 4, m = 6` still exceeds it.
#[must_use]
pub fn adversary_orbits(n: usize, m: usize) -> Vec<Adversary> {
    assert!(n >= 1 && m >= 1, "need at least one process and register");
    let fact = |k: usize| -> u128 { (1..=k as u128).product::<u128>().max(1) };
    let work = fact(m)
        .saturating_pow(n as u32 - 1)
        .saturating_mul((n * n * m) as u128);
    assert!(
        work <= 250_000_000,
        "orbit enumeration would take (m!)^(n-1)·n²·m = {work} elementary steps \
         for n = {n}, m = {m}; feasible region is roughly m ≤ 10 for n = 2, \
         m ≤ 6 for n = 3, m ≤ 5 for n = 4"
    );
    let perms = all_permutations(m);
    // Left-normalizing by f_1⁻¹ maps every assignment into one with the
    // identity first, so enumerating (id, f_2, …, f_n) covers all orbits.
    // Tuples are streamed: each is canonicalized and its form hashed into
    // the dedup set immediately, so memory is O(#orbits), not O(tuples).
    // Component 0 of every canonical form is the identity, so only the
    // tail is stored and hashed; the identity is re-prepended below.
    let mut reps: std::collections::HashSet<Vec<Vec<usize>>> = std::collections::HashSet::new();
    let mut tuple: Vec<Permutation> = vec![Permutation::identity(m); n];
    enumerate_tails(&mut tuple, 1, &perms, &mut reps);
    let mut ordered: Vec<Vec<Vec<usize>>> = reps.into_iter().collect();
    ordered.sort_unstable();
    ordered
        .into_iter()
        .map(|tail| {
            Adversary::Explicit(
                std::iter::once(Permutation::identity(m))
                    .chain(tail.into_iter().map(|fwd| {
                        Permutation::from_forward(fwd).expect("canonical image is valid")
                    }))
                    .collect(),
            )
        })
        .collect()
}

fn enumerate_tails(
    tuple: &mut Vec<Permutation>,
    pos: usize,
    perms: &[Permutation],
    reps: &mut std::collections::HashSet<Vec<Vec<usize>>>,
) {
    if pos == tuple.len() {
        let mut canon = canonical_form(tuple);
        canon.remove(0); // constant identity row — implicit in the set
        reps.insert(canon);
        return;
    }
    for p in perms {
        tuple[pos] = p.clone();
        enumerate_tails(tuple, pos + 1, perms, reps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Number of self-inverse permutations of `m` elements (brute force).
    fn involutions(m: usize) -> usize {
        all_permutations(m)
            .iter()
            .filter(|p| **p == p.inverse())
            .count()
    }

    #[test]
    fn two_process_class_counts_match_the_involution_formula() {
        // Orbits for n = 2 are pairs {h, h⁻¹}: (m! + i(m))/2 classes.
        for m in 1..=5usize {
            let fact: usize = (1..=m).product();
            let expected = (fact + involutions(m)) / 2;
            assert_eq!(
                adversary_orbits(2, m).len(),
                expected,
                "class count for n = 2, m = {m}"
            );
        }
    }

    #[test]
    fn every_assignment_maps_to_exactly_one_representative_m_up_to_5() {
        // Soundness + completeness of the enumeration, for n = 2 and all
        // m ≤ 5: every (f₁, f₂) canonicalizes to a listed representative
        // (coverage), every representative is hit (no dead entries), and
        // representatives are fixed points of canonical_form (so no two
        // listed adversaries share an orbit).
        for m in 1..=5usize {
            let reps = adversary_orbits(2, m);
            let rep_forms: Vec<Vec<Vec<usize>>> = reps
                .iter()
                .map(|adv| {
                    let Adversary::Explicit(ps) = adv else {
                        panic!("orbit reps are explicit");
                    };
                    ps.iter().map(|p| p.as_slice().to_vec()).collect()
                })
                .collect();
            for form in &rep_forms {
                let back: Vec<Permutation> = form
                    .iter()
                    .map(|f| Permutation::from_forward(f.clone()).unwrap())
                    .collect();
                assert_eq!(
                    &canonical_form(&back),
                    form,
                    "representatives must be canonical fixed points (m = {m})"
                );
            }
            let mut hit = vec![false; rep_forms.len()];
            // Covering tuples (id, h) suffices: every orbit contains one.
            for h in all_permutations(m) {
                let tuple = vec![Permutation::identity(m), h];
                let canon = canonical_form(&tuple);
                let idx = rep_forms
                    .iter()
                    .position(|f| *f == canon)
                    .unwrap_or_else(|| panic!("orbit of {tuple:?} not represented (m = {m})"));
                hit[idx] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "every representative must be reachable (m = {m})"
            );
        }
    }

    #[test]
    fn equivalent_assignments_share_a_canonical_form() {
        // Same orbit three ways: raw, globally relabeled, process-swapped.
        let f1 = Permutation::rotation(4, 1);
        let f2 = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let g = Permutation::from_forward(vec![3, 1, 0, 2]).unwrap();
        let base = vec![f1.clone(), f2.clone()];
        let relabeled = vec![g.compose(&f1), g.compose(&f2)];
        let swapped = vec![f2, f1];
        let canon = canonical_form(&base);
        assert_eq!(canonical_form(&relabeled), canon);
        assert_eq!(canonical_form(&swapped), canon);
    }

    #[test]
    fn inequivalent_assignments_differ() {
        // Identity-for-both vs a 3-cycle offset: different orbits.
        let same = vec![Permutation::identity(3), Permutation::identity(3)];
        let offset = vec![Permutation::identity(3), Permutation::rotation(3, 1)];
        assert_ne!(canonical_form(&same), canonical_form(&offset));
    }

    #[test]
    fn representatives_materialize_for_model_checking() {
        for adv in adversary_orbits(2, 3) {
            let perms = adv.permutations(2, 3).expect("explicit reps are valid");
            assert_eq!(perms.len(), 2);
            assert!(perms.iter().all(|p| p.len() == 3));
        }
    }

    #[test]
    fn three_process_enumeration_is_consistent() {
        // n = 3, m = 3: small enough to enumerate; representatives must
        // be canonical fixed points and pairwise distinct.
        let reps = adversary_orbits(3, 3);
        assert!(!reps.is_empty());
        let forms: std::collections::BTreeSet<Vec<Vec<usize>>> = reps
            .iter()
            .map(|adv| {
                let Adversary::Explicit(ps) = adv else {
                    panic!("explicit")
                };
                canonical_form(ps)
            })
            .collect();
        assert_eq!(forms.len(), reps.len(), "reps must be pairwise distinct");
    }

    #[test]
    fn fast_canonical_form_matches_the_exhaustive_scan() {
        // The O(n²m) canonicalizer must return exactly the old m!·n!
        // scan's minimum — same bytes, not merely the same orbit.
        let exhaustive = |perms: &[Permutation]| -> Vec<Vec<usize>> {
            let (n, m) = (perms.len(), perms[0].len());
            let mut best: Option<Vec<Vec<usize>>> = None;
            for g in all_permutations(m) {
                for pi in all_permutations(n) {
                    let cand: Vec<Vec<usize>> = (0..n)
                        .map(|s| g.compose(&perms[pi.apply(s)]).as_slice().to_vec())
                        .collect();
                    if best.as_ref().is_none_or(|b| cand < *b) {
                        best = Some(cand);
                    }
                }
            }
            best.expect("nonempty")
        };
        for seed in 0..8u64 {
            let cases = [
                vec![
                    Permutation::random(4, seed),
                    Permutation::random(4, seed + 100),
                ],
                vec![
                    Permutation::random(3, seed),
                    Permutation::random(3, seed + 50),
                    Permutation::random(3, seed + 99),
                ],
            ];
            for perms in cases {
                assert_eq!(
                    canonical_form(&perms),
                    exhaustive(&perms),
                    "fast path diverged for {perms:?}"
                );
            }
        }
    }

    #[test]
    fn seven_registers_two_processes_is_now_feasible() {
        // 7 ∈ M(2): the streamed enumeration lifts the old m ≤ 6 wall.
        // Orbits for n = 2 are the pairs {h, h⁻¹}: (7! + i(7))/2 classes.
        let reps = adversary_orbits(2, 7);
        let fact: usize = (1..=7).product();
        assert_eq!(reps.len(), (fact + involutions(7)) / 2);
        // Representatives stay canonical fixed points.
        for adv in reps.iter().take(20) {
            let Adversary::Explicit(ps) = adv else {
                panic!("orbit reps are explicit");
            };
            let form: Vec<Vec<usize>> = ps.iter().map(|p| p.as_slice().to_vec()).collect();
            assert_eq!(canonical_form(ps), form);
        }
    }

    #[test]
    #[should_panic(expected = "orbit enumeration would take")]
    fn infeasible_combination_is_rejected_not_hung() {
        // (n = 4, m = 6) passes naive per-parameter caps but would run
        // ~10¹⁷ operations; the work-product guard must reject it.
        let _ = adversary_orbits(4, 6);
    }
}
