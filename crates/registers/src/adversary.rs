//! Static anonymity adversaries.
//!
//! In the paper's model an adversary fixes, **before the execution**, one
//! permutation per process.  [`Adversary`] packages the strategies used
//! throughout this workspace: the trivial identity assignment (a
//! non-anonymous baseline), seeded random assignments (the "typical"
//! adversary), uniform rotations, the exact Table I example, and the
//! Theorem 5 ring assignment that spaces `ℓ` processes' initial registers
//! `m/ℓ` apart.

use crate::permutation::{Permutation, PermutationError};

/// Error returned by [`Adversary::permutations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryError {
    /// An explicit strategy supplied the wrong number of permutations.
    WrongCount {
        /// Permutations supplied.
        got: usize,
        /// Processes requested.
        want: usize,
    },
    /// An explicit permutation has the wrong domain size.
    WrongSize {
        /// Domain size found.
        got: usize,
        /// Memory size requested.
        want: usize,
    },
    /// The ring strategy requires `ℓ` to divide `m`.
    RingNotDividing {
        /// Number of processes on the ring.
        ell: usize,
        /// Memory size.
        m: usize,
    },
    /// An underlying permutation was invalid.
    Invalid(PermutationError),
}

impl std::fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdversaryError::WrongCount { got, want } => {
                write!(
                    f,
                    "explicit adversary supplied {got} permutations for {want} processes"
                )
            }
            AdversaryError::WrongSize { got, want } => {
                write!(
                    f,
                    "explicit permutation has size {got}, memory has {want} registers"
                )
            }
            AdversaryError::RingNotDividing { ell, m } => {
                write!(f, "ring adversary requires ℓ | m, got ℓ={ell}, m={m}")
            }
            AdversaryError::Invalid(e) => write!(f, "invalid permutation: {e}"),
        }
    }
}

impl std::error::Error for AdversaryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdversaryError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PermutationError> for AdversaryError {
    fn from(e: PermutationError) -> Self {
        AdversaryError::Invalid(e)
    }
}

/// A strategy assigning one register-name permutation to each process.
///
/// # Example
///
/// ```
/// use amx_registers::Adversary;
/// let perms = Adversary::random(99).permutations(3, 7).unwrap();
/// assert_eq!(perms.len(), 3);
/// assert!(perms.iter().all(|p| p.len() == 7));
/// ```
#[derive(Debug, Clone)]
pub enum Adversary {
    /// Every process gets the identity permutation (non-anonymous memory).
    Identity,
    /// Process `i` gets a random permutation seeded by `seed ⊕ i`.
    Random(
        /// Base seed; process `i` uses `seed.wrapping_add(i)`.
        u64,
    ),
    /// Process `i` gets the rotation by `i · stride`.
    Rotations {
        /// Per-process rotation stride.
        stride: usize,
    },
    /// Theorem 5 ring assignment: process `i` of `ℓ` gets the rotation by
    /// `i · (m/ℓ)`, spacing initial registers evenly on the ring.
    Ring {
        /// Number of processes placed on the ring; must divide `m`.
        ell: usize,
    },
    /// An explicit list of permutations, one per process.
    Explicit(
        /// The permutations, in process order.
        Vec<Permutation>,
    ),
}

impl Adversary {
    /// Convenience constructor for [`Adversary::Explicit`].
    #[must_use]
    pub fn explicit(perms: Vec<Permutation>) -> Self {
        Adversary::Explicit(perms)
    }

    /// Convenience constructor for [`Adversary::Random`].
    #[must_use]
    pub fn random(seed: u64) -> Self {
        Adversary::Random(seed)
    }

    /// The paper's Table I assignment for 2 processes over 3 registers:
    /// `p` uses permutation (2,3,1) and `q` uses (3,1,2) in the paper's
    /// 1-based notation.
    ///
    /// In the paper's table, the *row for physical `R[k]`* lists the local
    /// name each process uses for it; converting to our 0-based forward
    /// (local → physical) maps gives `p: [2,0,1]` and `q: [1,2,0]`.
    #[must_use]
    pub fn table1() -> Self {
        Adversary::Explicit(vec![
            Permutation::from_forward(vec![2, 0, 1]).expect("static"),
            Permutation::from_forward(vec![1, 2, 0]).expect("static"),
        ])
    }

    /// Materializes the permutations for `n` processes over `m` registers.
    ///
    /// # Errors
    ///
    /// Returns [`AdversaryError`] when an explicit strategy does not match
    /// `(n, m)` or the ring strategy's `ℓ` does not divide `m`.
    pub fn permutations(&self, n: usize, m: usize) -> Result<Vec<Permutation>, AdversaryError> {
        match self {
            Adversary::Identity => Ok((0..n).map(|_| Permutation::identity(m)).collect()),
            Adversary::Random(seed) => Ok((0..n)
                .map(|i| Permutation::random(m, seed.wrapping_add(i as u64)))
                .collect()),
            Adversary::Rotations { stride } => Ok((0..n)
                .map(|i| Permutation::rotation(m, i * stride))
                .collect()),
            Adversary::Ring { ell } => {
                if *ell == 0 || !m.is_multiple_of(*ell) {
                    return Err(AdversaryError::RingNotDividing { ell: *ell, m });
                }
                let step = m / ell;
                Ok((0..n)
                    .map(|i| Permutation::rotation(m, (i % ell) * step))
                    .collect())
            }
            Adversary::Explicit(perms) => {
                if perms.len() != n {
                    return Err(AdversaryError::WrongCount {
                        got: perms.len(),
                        want: n,
                    });
                }
                for p in perms {
                    if p.len() != m {
                        return Err(AdversaryError::WrongSize {
                            got: p.len(),
                            want: m,
                        });
                    }
                }
                Ok(perms.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_strategy() {
        let perms = Adversary::Identity.permutations(4, 6).unwrap();
        assert_eq!(perms.len(), 4);
        assert!(perms.iter().all(Permutation::is_identity));
    }

    #[test]
    fn random_strategy_distinct_per_process() {
        let perms = Adversary::random(1).permutations(4, 16).unwrap();
        for i in 0..perms.len() {
            for j in i + 1..perms.len() {
                assert_ne!(perms[i], perms[j], "processes {i} and {j}");
            }
        }
    }

    #[test]
    fn random_strategy_deterministic() {
        assert_eq!(
            Adversary::random(9).permutations(3, 8).unwrap(),
            Adversary::random(9).permutations(3, 8).unwrap()
        );
    }

    #[test]
    fn rotations_strategy() {
        let perms = Adversary::Rotations { stride: 2 }
            .permutations(3, 6)
            .unwrap();
        assert_eq!(perms[0], Permutation::rotation(6, 0));
        assert_eq!(perms[1], Permutation::rotation(6, 2));
        assert_eq!(perms[2], Permutation::rotation(6, 4));
    }

    #[test]
    fn ring_strategy_spaces_initial_registers() {
        let perms = Adversary::Ring { ell: 3 }.permutations(3, 6).unwrap();
        // "Initial register" of process i is its local name 0.
        let initials: Vec<usize> = perms.iter().map(|p| p.apply(0)).collect();
        assert_eq!(initials, vec![0, 2, 4]);
    }

    #[test]
    fn ring_requires_divisibility() {
        assert!(matches!(
            Adversary::Ring { ell: 3 }.permutations(3, 7),
            Err(AdversaryError::RingNotDividing { ell: 3, m: 7 })
        ));
        assert!(matches!(
            Adversary::Ring { ell: 0 }.permutations(1, 6),
            Err(AdversaryError::RingNotDividing { .. })
        ));
    }

    #[test]
    fn explicit_strategy_validates_shape() {
        let p = Permutation::identity(3);
        assert!(matches!(
            Adversary::explicit(vec![p.clone()]).permutations(2, 3),
            Err(AdversaryError::WrongCount { got: 1, want: 2 })
        ));
        assert!(matches!(
            Adversary::explicit(vec![p.clone(), p.clone()]).permutations(2, 4),
            Err(AdversaryError::WrongSize { got: 3, want: 4 })
        ));
        assert!(Adversary::explicit(vec![p.clone(), p])
            .permutations(2, 3)
            .is_ok());
    }

    #[test]
    fn table1_matches_paper() {
        let perms = Adversary::table1().permutations(2, 3).unwrap();
        // Physical register seen by p under local name x, per the paper:
        // p's names (1-based): R[2]→phys R[1], R[3]→phys R[2], R[1]→phys R[3].
        // 0-based forward for p: local 0→2, 1→0, 2→1.
        assert_eq!(perms[0].as_slice(), &[2, 0, 1]);
        assert_eq!(perms[1].as_slice(), &[1, 2, 0]);
        // The same physical register (paper's external R[1]) is p's R[2]
        // and q's R[3]: p.apply(1) == q.apply(2) == 0.
        assert_eq!(perms[0].apply(1), 0);
        assert_eq!(perms[1].apply(2), 0);
    }

    #[test]
    fn error_display() {
        for e in [
            AdversaryError::WrongCount { got: 1, want: 2 },
            AdversaryError::WrongSize { got: 3, want: 4 },
            AdversaryError::RingNotDividing { ell: 3, m: 7 },
            AdversaryError::Invalid(PermutationError::Duplicate { index: 0 }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
