//! Step-level invariants from the paper's proofs, checked on random
//! executions.
//!
//! * **Transition legality** — a step by process `i` may only change a
//!   register to `id_i` (claiming) or to ⊥ (erasing).  Two races the
//!   paper's proofs explicitly accommodate shape the exact rule per
//!   model:
//!   - Algorithm 1 claims with plain writes from stale views, so a claim
//!     may overwrite *anything*; and `shrink()`'s read-then-write means a
//!     ⊥-write can land on a register that was re-claimed by someone else
//!     between the check and the write.  Legal deltas: `* → id_i`,
//!     `* → ⊥`.  Still illegal: writing a *third party's* id.
//!   - Algorithm 2 claims only through `cas(⊥ → id_i)` and erases only
//!     registers that provably still hold `id_i` (no one else can
//!     overwrite a non-⊥ register).  Legal deltas: `⊥ → id_i`,
//!     `id_i → ⊥` — strictly.
//! * **Claim 1 / majority persistence** — while a process is in its
//!   critical section, its identity stays present in the memory
//!   (Algorithm 1), resp. it keeps owning a strict majority
//!   (Algorithm 2), until its own unlock begins.

use amx_core::{Alg1Automaton, Alg2Automaton, MutexSpec};
use amx_ids::{Pid, PidPool, Slot};
use amx_registers::Adversary;
use amx_sim::automaton::{Automaton, Outcome, Phase};
use amx_sim::mem::{MemoryModel, SimMemory};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Checks one step's memory delta for legality.
fn check_delta(before: &[Slot], after: &[Slot], actor: Pid, rmw: bool) -> Result<(), String> {
    for (x, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        if b == a {
            continue;
        }
        let claims_own = a.is_owned_by(actor);
        let erases_own = b.is_owned_by(actor) && a.is_bottom();
        if rmw {
            // Algorithm 2: claims only from ⊥.
            let legal = (claims_own && b.is_bottom()) || erases_own;
            if !legal {
                return Err(format!("illegal RMW delta at {x}: {b:?} → {a:?}"));
            }
        } else {
            // Algorithm 1: plain writes may overwrite anything with our
            // id, and shrink's delayed ⊥-write may erase a register that
            // was re-claimed since the check (see module docs).
            let legal = claims_own || a.is_bottom();
            let _ = erases_own;
            if !legal {
                return Err(format!("illegal RW delta at {x}: {b:?} → {a:?}"));
            }
        }
    }
    Ok(())
}

/// Drives `n` automata for `steps` scheduler picks, checking transition
/// legality, mutual exclusion, and in-CS presence invariants.
fn random_walk_alg1(n: usize, m: usize, seed: u64, steps: usize) {
    let spec = MutexSpec::rw_unchecked(n, m);
    let mut pool = PidPool::sequential();
    let ids = pool.mint_many(n);
    let automata: Vec<Alg1Automaton> = ids.iter().map(|&id| Alg1Automaton::new(spec, id)).collect();
    let mut states: Vec<_> = automata.iter().map(Automaton::init_state).collect();
    let mut phases = vec![Phase::Remainder; n];
    let mut mem = SimMemory::new(MemoryModel::Rw, m, &Adversary::Random(seed), n).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
    let order: Vec<usize> = (0..n).collect();

    for _ in 0..steps {
        let i = *order.choose(&mut rng).unwrap();
        let before = mem.slots().to_vec();
        match phases[i] {
            Phase::Remainder => {
                automata[i].start_lock(&mut states[i]);
                phases[i] = Phase::Trying;
            }
            Phase::Cs => {
                automata[i].start_unlock(&mut states[i]);
                phases[i] = Phase::Exiting;
            }
            _ => {}
        }
        let out = automata[i].step(&mut states[i], &mut mem.view(i));
        let after = mem.slots().to_vec();
        check_delta(&before, &after, ids[i], false).unwrap();
        match out {
            Outcome::Acquired => {
                assert!(
                    phases.iter().all(|&p| p != Phase::Cs),
                    "mutual exclusion violated"
                );
                phases[i] = Phase::Cs;
                // Entry condition: the acquiring snapshot saw all-own, and
                // since no one else writes between the snapshot (this very
                // step) and now, the memory IS all-own.
                assert!(after.iter().all(|s| s.is_owned_by(ids[i])));
            }
            Outcome::Released => phases[i] = Phase::Remainder,
            Outcome::Progress => {}
        }
        // Claim 1: every process in CS still appears in the memory.
        for (j, &phase) in phases.iter().enumerate() {
            if phase == Phase::Cs {
                assert!(
                    after.iter().any(|s| s.is_owned_by(ids[j])),
                    "claim 1 violated: CS holder {j} vanished from memory"
                );
            }
        }
    }
}

fn random_walk_alg2(n: usize, m: usize, seed: u64, steps: usize) {
    let spec = MutexSpec::rmw_unchecked(n, m);
    let mut pool = PidPool::sequential();
    let ids = pool.mint_many(n);
    let automata: Vec<Alg2Automaton> = ids.iter().map(|&id| Alg2Automaton::new(spec, id)).collect();
    let mut states: Vec<_> = automata.iter().map(Automaton::init_state).collect();
    let mut phases = vec![Phase::Remainder; n];
    let mut mem = SimMemory::new(MemoryModel::Rmw, m, &Adversary::Random(seed), n).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
    let order: Vec<usize> = (0..n).collect();

    for _ in 0..steps {
        let i = *order.choose(&mut rng).unwrap();
        let before = mem.slots().to_vec();
        match phases[i] {
            Phase::Remainder => {
                automata[i].start_lock(&mut states[i]);
                phases[i] = Phase::Trying;
            }
            Phase::Cs => {
                automata[i].start_unlock(&mut states[i]);
                phases[i] = Phase::Exiting;
            }
            _ => {}
        }
        let out = automata[i].step(&mut states[i], &mut mem.view(i));
        let after = mem.slots().to_vec();
        check_delta(&before, &after, ids[i], true).unwrap();
        match out {
            Outcome::Acquired => {
                assert!(
                    phases.iter().all(|&p| p != Phase::Cs),
                    "mutual exclusion violated"
                );
                phases[i] = Phase::Cs;
            }
            Outcome::Released => phases[i] = Phase::Remainder,
            Outcome::Progress => {}
        }
        // Majority persistence: a CS holder owns > m/2 registers at all
        // times (no other process can remove its claims).
        for (j, &phase) in phases.iter().enumerate() {
            if phase == Phase::Cs {
                let owned = after.iter().filter(|s| s.is_owned_by(ids[j])).count();
                assert!(
                    2 * owned > m,
                    "majority persistence violated: holder {j} owns {owned}/{m}"
                );
            }
        }
    }
}

#[test]
fn alg1_invariants_hold_on_long_walks() {
    for seed in 0..8 {
        random_walk_alg1(2, 3, seed, 20_000);
        random_walk_alg1(3, 5, seed, 20_000);
    }
}

#[test]
fn alg2_invariants_hold_on_long_walks() {
    for seed in 0..8 {
        random_walk_alg2(2, 3, seed, 20_000);
        random_walk_alg2(3, 5, seed, 20_000);
        random_walk_alg2(2, 1, seed, 5_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants also hold on invalid configurations — the algorithms
    /// never corrupt memory or violate claim-1-style presence; invalid m
    /// only ever costs *progress*.
    #[test]
    fn alg1_invariants_hold_even_for_invalid_m(
        m in 2usize..7,
        seed in any::<u64>(),
    ) {
        random_walk_alg1(2, m, seed, 10_000);
    }

    #[test]
    fn alg2_invariants_hold_even_for_invalid_m(
        m in 1usize..7,
        seed in any::<u64>(),
    ) {
        random_walk_alg2(3, m, seed, 10_000);
    }

    /// Random (n, m) valid pairs with random seeds.
    #[test]
    fn both_algorithms_on_random_valid_pairs(
        n in 2usize..4,
        seed in any::<u64>(),
    ) {
        let m = amx_numth::smallest_valid_m(n as u64) as usize;
        random_walk_alg1(n, m, seed, 8_000);
        random_walk_alg2(n, m, seed, 8_000);
    }
}
