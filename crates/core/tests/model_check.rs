//! Exhaustive verification of Algorithms 1 and 2 on small configurations.
//!
//! These tests *prove* (over the full reachable state space of the
//! simulator model) that:
//!
//! * for valid `m ∈ M(n)` both algorithms satisfy mutual exclusion and
//!   deadlock-freedom — the sufficiency half of the paper's Table II;
//! * for invalid `m ∉ M(n)` the algorithms admit a fair livelock — the
//!   behaviour the necessity half (Theorem 5 / Taubenfeld 2017) predicts
//!   for *any* symmetric algorithm.

use amx_core::{Alg1Automaton, Alg2Automaton, FreeSlotPolicy, MutexSpec};
use amx_registers::Adversary;
use amx_sim::mc::{ModelChecker, Symmetry, Verdict};
use amx_sim::MemoryModel;

fn check_alg1(n: usize, m: usize, adversary: &Adversary, policy: FreeSlotPolicy) -> Verdict {
    let spec = MutexSpec::rw_unchecked(n, m);
    let mut pool = amx_ids::PidPool::sequential();
    let automata: Vec<Alg1Automaton> = (0..n)
        .map(|_| Alg1Automaton::new(spec, pool.mint()).with_policy(policy))
        .collect();
    ModelChecker::with_automata(automata, MemoryModel::Rw, m, adversary)
        .unwrap()
        .max_states(4_000_000)
        .run()
        .unwrap()
        .verdict
}

fn check_alg2(n: usize, m: usize, adversary: &Adversary) -> Verdict {
    let spec = MutexSpec::rmw_unchecked(n, m);
    let mut pool = amx_ids::PidPool::sequential();
    let automata: Vec<Alg2Automaton> = (0..n)
        .map(|_| Alg2Automaton::new(spec, pool.mint()))
        .collect();
    ModelChecker::with_automata(automata, MemoryModel::Rmw, m, adversary)
        .unwrap()
        .max_states(4_000_000)
        .run()
        .unwrap()
        .verdict
}

// ---------------------------------------------------------------- Alg 1 —

#[test]
fn alg1_n2_m3_is_correct_exhaustively() {
    assert_eq!(
        check_alg1(2, 3, &Adversary::Identity, FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

#[test]
fn alg1_n2_m3_correct_under_rotation_adversary() {
    let adv = Adversary::Rotations { stride: 1 };
    assert_eq!(
        check_alg1(2, 3, &adv, FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

#[test]
fn alg1_n2_m3_correct_under_random_adversaries() {
    for seed in 0..4 {
        assert_eq!(
            check_alg1(2, 3, &Adversary::Random(seed), FreeSlotPolicy::FirstFree),
            Verdict::Ok,
            "adversary seed {seed}"
        );
    }
}

#[test]
fn alg1_n2_m3_correct_under_table1_adversary() {
    assert_eq!(
        check_alg1(2, 3, &Adversary::table1(), FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

#[test]
fn alg1_n2_m3_correct_for_all_policies() {
    for policy in [
        FreeSlotPolicy::FirstFree,
        FreeSlotPolicy::LastFree,
        FreeSlotPolicy::RotatingFrom(1),
        FreeSlotPolicy::RotatingFrom(2),
    ] {
        assert_eq!(
            check_alg1(2, 3, &Adversary::Identity, policy),
            Verdict::Ok,
            "policy {policy:?}"
        );
    }
}

#[test]
fn alg1_n2_m2_invalid_livelocks() {
    // gcd(2, 2) = 2: with a 1-1 split of a full view neither process is
    // below average, so both spin forever.
    let v = check_alg1(2, 2, &Adversary::Identity, FreeSlotPolicy::FirstFree);
    assert!(
        matches!(v, Verdict::FairLivelock { .. }),
        "expected fair livelock for invalid m = 2, got {v:?}"
    );
}

#[test]
fn alg1_n2_m4_invalid_livelocks() {
    // gcd(2, 4) = 2: the 2-2 split is stable.
    let v = check_alg1(2, 4, &Adversary::Identity, FreeSlotPolicy::FirstFree);
    assert!(
        matches!(v, Verdict::FairLivelock { .. }),
        "expected fair livelock for invalid m = 4, got {v:?}"
    );
}

#[test]
fn alg1_n3_m3_invalid_livelocks() {
    // n = 3, m = 3: the 1-1-1 split is stable.
    let v = check_alg1(3, 3, &Adversary::Identity, FreeSlotPolicy::FirstFree);
    assert!(
        matches!(v, Verdict::FairLivelock { .. }),
        "expected fair livelock for invalid n = m = 3, got {v:?}"
    );
}

// ---------------------------------------------------------------- Alg 2 —

#[test]
fn alg2_n2_m1_degenerate_is_correct() {
    assert_eq!(check_alg2(2, 1, &Adversary::Identity), Verdict::Ok);
}

#[test]
fn alg2_n2_m3_is_correct_exhaustively() {
    assert_eq!(check_alg2(2, 3, &Adversary::Identity), Verdict::Ok);
}

#[test]
fn alg2_n2_m3_correct_under_adversaries() {
    for adv in [
        Adversary::Rotations { stride: 1 },
        Adversary::Random(11),
        Adversary::table1(),
    ] {
        assert_eq!(check_alg2(2, 3, &adv), Verdict::Ok, "adversary {adv:?}");
    }
}

#[test]
fn alg2_n3_m1_degenerate_is_correct() {
    assert_eq!(check_alg2(3, 1, &Adversary::Identity), Verdict::Ok);
}

#[test]
fn alg2_n2_m2_invalid_livelocks() {
    let v = check_alg2(2, 2, &Adversary::Identity);
    assert!(
        matches!(v, Verdict::FairLivelock { .. }),
        "expected fair livelock for invalid m = 2, got {v:?}"
    );
}

#[test]
fn alg2_n2_m4_invalid_livelocks() {
    let v = check_alg2(2, 4, &Adversary::Identity);
    assert!(
        matches!(v, Verdict::FairLivelock { .. }),
        "expected fair livelock for invalid m = 4, got {v:?}"
    );
}

#[test]
fn alg2_n2_m2_ring_adversary_livelocks() {
    // The Theorem 5 construction: ℓ = 2 divides m = 2, initial registers
    // spaced m/ℓ = 1 apart.
    let v = check_alg2(2, 2, &Adversary::Ring { ell: 2 });
    assert!(matches!(v, Verdict::FairLivelock { .. }), "got {v:?}");
}

// ------------------------------------------------------- heavier checks —

#[test]
fn alg1_n2_m5_is_correct_exhaustively() {
    assert_eq!(
        check_alg1(2, 5, &Adversary::Identity, FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

#[test]
fn alg2_n2_m5_is_correct_exhaustively() {
    assert_eq!(check_alg2(2, 5, &Adversary::Identity), Verdict::Ok);
}

#[test]
fn alg2_n3_m2_invalid_livelocks() {
    // n = 3 processes on m = 2 registers (gcd(2, 2) = 2 ≤ n).
    let v = check_alg2(3, 2, &Adversary::Identity);
    assert!(matches!(v, Verdict::FairLivelock { .. }), "got {v:?}");
}

#[test]
#[ignore = "large state space; run with --ignored or --release"]
fn alg1_n3_m5_is_correct_exhaustively() {
    // The smallest valid 3-process RW configuration, fully explored.
    assert_eq!(
        check_alg1(3, 5, &Adversary::Identity, FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

#[test]
#[ignore = "large state space; run with --ignored or --release"]
fn alg1_n2_m7_is_correct_exhaustively() {
    assert_eq!(
        check_alg1(2, 7, &Adversary::Identity, FreeSlotPolicy::FirstFree),
        Verdict::Ok
    );
}

// Larger 3-process Alg 2 configurations are covered three ways: the
// symmetry-reduced engine explores (3, 3) exhaustively below and
// (3, 5) — ~18.2M concrete states — in `mc_sweep`'s deep point; deep
// randomized executions cover valid m beyond that; and deterministic
// lock-step executions (the Theorem 5 schedule) drive invalid m.

#[test]
fn alg2_n3_m3_invalid_livelocks_symmetry_reduced() {
    // A configuration the seed suite declared out of exhaustive reach:
    // with process-symmetry reduction it completes (storing one state
    // per S₃ orbit) and confirms the Theorem 5 prediction.
    let spec = MutexSpec::rmw_unchecked(3, 3);
    let mut pool = amx_ids::PidPool::sequential();
    let automata: Vec<Alg2Automaton> = (0..3)
        .map(|_| Alg2Automaton::new(spec, pool.mint()))
        .collect();
    let report = ModelChecker::with_automata(automata, MemoryModel::Rmw, 3, &Adversary::Identity)
        .unwrap()
        .symmetry(Symmetry::Process)
        .max_states(4_000_000)
        .run()
        .unwrap();
    assert!(
        matches!(report.verdict, Verdict::FairLivelock { .. }),
        "got {:?}",
        report.verdict
    );
    assert!(
        report.canonical_states * 5 < report.full_states_estimate,
        "three interchangeable processes should reduce by nearly 6×: {} vs {}",
        report.canonical_states,
        report.full_states_estimate
    );
}

#[test]
fn alg2_n3_m5_randomized_runs_are_clean() {
    use amx_sim::{Runner, Scheduler, Workload};
    let spec = MutexSpec::rmw_unchecked(3, 5);
    for seed in 0..8u64 {
        let mut pool = amx_ids::PidPool::sequential();
        let automata: Vec<Alg2Automaton> = (0..3)
            .map(|_| Alg2Automaton::new(spec, pool.mint()))
            .collect();
        let report =
            Runner::with_adversary(automata, MemoryModel::Rmw, 5, &Adversary::Random(seed))
                .unwrap()
                .scheduler(Scheduler::random(seed ^ 0xABCD))
                .workload(Workload::cycles(50))
                .max_steps(4_000_000)
                .run();
        assert!(
            report.is_clean_completion(),
            "seed {seed}: {:?}",
            report.stop
        );
        assert_eq!(report.total_entries(), 150, "seed {seed}");
    }
}

#[test]
fn alg2_n3_m3_ring_lockstep_livelocks() {
    use amx_sim::{Runner, Scheduler, Stop, Workload};
    // gcd(3, 3) = 3: three processes spaced m/ℓ = 1 apart on the ring,
    // scheduled in lock steps, stay perfectly symmetric and never enter.
    let spec = MutexSpec::rmw_unchecked(3, 3);
    let mut pool = amx_ids::PidPool::sequential();
    let automata: Vec<Alg2Automaton> = (0..3)
        .map(|_| Alg2Automaton::new(spec, pool.mint()))
        .collect();
    let report = Runner::with_adversary(automata, MemoryModel::Rmw, 3, &Adversary::Ring { ell: 3 })
        .unwrap()
        .scheduler(Scheduler::round_robin())
        .workload(Workload::unbounded())
        .max_steps(100_000)
        .run();
    assert_eq!(report.stop, Stop::StepBudgetExhausted);
    assert_eq!(report.total_entries(), 0, "symmetry must never break");
}
