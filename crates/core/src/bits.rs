//! Small-index bitmask helpers shared by the automata.
//!
//! Automaton states must be compact and hashable; the set of local
//! register indices a process is about to erase fits in a `u64`
//! (configurations are capped at [`crate::spec::MAX_REGISTERS`] = 64).

use amx_ids::{Pid, Slot};

/// Bitmask of the local indices in `view` owned by `id`.
pub(crate) fn owned_mask(view: &[Slot], id: Pid) -> u64 {
    debug_assert!(view.len() <= 64);
    view.iter()
        .enumerate()
        .filter(|(_, s)| s.is_owned_by(id))
        .fold(0u64, |acc, (x, _)| acc | (1u64 << x))
}

/// Lowest set bit at index ≥ `from`, if any.
pub(crate) fn next_index(mask: u64, from: usize) -> Option<usize> {
    if from >= 64 {
        return None;
    }
    let shifted = mask >> from;
    if shifted == 0 {
        None
    } else {
        Some(from + shifted.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;

    #[test]
    fn owned_mask_marks_exactly_owned() {
        let mut pool = PidPool::sequential();
        let (a, b) = (pool.mint(), pool.mint());
        let view = [Slot::from(a), Slot::BOTTOM, Slot::from(b), Slot::from(a)];
        assert_eq!(owned_mask(&view, a), 0b1001);
        assert_eq!(owned_mask(&view, b), 0b0100);
        assert_eq!(owned_mask(&view, PidPool::shuffled(9).mint()), 0);
    }

    #[test]
    fn next_index_walks_bits_in_order() {
        let mask = 0b1001_0010u64;
        assert_eq!(next_index(mask, 0), Some(1));
        assert_eq!(next_index(mask, 2), Some(4));
        assert_eq!(next_index(mask, 5), Some(7));
        assert_eq!(next_index(mask, 8), None);
        assert_eq!(next_index(0, 0), None);
        assert_eq!(next_index(u64::MAX, 63), Some(63));
        assert_eq!(next_index(u64::MAX, 64), None);
        assert_eq!(next_index(u64::MAX, 65), None);
    }
}
