//! Runtime policies: Algorithm 1's free-register choice and the threaded
//! runtime's contention backoff.
//!
//! Line 6 of Algorithm 1 writes the process identity into *some* register
//! whose entry was ⊥ in the latest snapshot — the paper leaves the choice
//! free, so correctness must not depend on it.  Making the policy explicit
//! lets tests and the model checker explore adversarial choices, and it
//! keeps automaton state deterministic (a requirement for state hashing).
//!
//! [`Backoff`] is the analogous knob for the threaded lock runtime: none
//! of the paper's progress arguments depend on *how* a competing process
//! waits between protocol steps, so the spin/yield/park ladder is a
//! pluggable policy on [`Participant`](crate::lock::Participant) rather
//! than a hard-coded loop.

use std::time::Duration;

use amx_ids::Slot;

/// Deterministic rule choosing a ⊥ entry from a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FreeSlotPolicy {
    /// Lowest free local index (the natural loop order).
    #[default]
    FirstFree,
    /// Highest free local index.
    LastFree,
    /// First free local index at or after `start` (cyclically) — lets
    /// experiments spread processes across the array or align them
    /// adversarially.
    RotatingFrom(
        /// Scan start offset.
        usize,
    ),
}

impl FreeSlotPolicy {
    /// Picks a free index from `view`, or `None` when the view is full.
    ///
    /// # Example
    ///
    /// ```
    /// use amx_core::policy::FreeSlotPolicy;
    /// use amx_ids::{PidPool, Slot};
    ///
    /// let id = PidPool::sequential().mint();
    /// let view = [Slot::from(id), Slot::BOTTOM, Slot::BOTTOM];
    /// assert_eq!(FreeSlotPolicy::FirstFree.choose(&view), Some(1));
    /// assert_eq!(FreeSlotPolicy::LastFree.choose(&view), Some(2));
    /// assert_eq!(FreeSlotPolicy::RotatingFrom(2).choose(&view), Some(2));
    /// ```
    #[must_use]
    pub fn choose(&self, view: &[Slot]) -> Option<usize> {
        let m = view.len();
        match *self {
            FreeSlotPolicy::FirstFree => view.iter().position(|s| s.is_bottom()),
            FreeSlotPolicy::LastFree => view.iter().rposition(|s| s.is_bottom()),
            FreeSlotPolicy::RotatingFrom(start) => (0..m)
                .map(|k| (start + k) % m)
                .find(|&x| view[x].is_bottom()),
        }
    }
}

/// Contention backoff ladder for the threaded lock runtime.
///
/// Every acquisition loop in [`Participant`](crate::lock::Participant)
/// calls [`wait`](Backoff::wait) with a monotonically increasing attempt
/// counter between bounded protocol slices; the policy decides how far up
/// the spin → yield → park ladder that attempt climbs.  The choice is
/// pure waiting strategy — it cannot affect safety or deadlock-freedom,
/// only latency and CPU burn under contention, which is exactly why it is
/// a pluggable policy and a `lock_bench` axis rather than a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backoff {
    /// Pure busy-wait with the CPU relax hint: lowest handoff latency,
    /// burns a hardware thread per waiter.
    Spin,
    /// Spin briefly, then donate the scheduler slice.  The default — it
    /// matches the pre-policy runtime's behaviour under oversubscription
    /// without giving up the fast uncontended path.
    #[default]
    SpinYield,
    /// Spin, then yield, then park the thread for exponentially growing
    /// slices (capped at [`Backoff::PARK_CAP`]).  The kindest policy when
    /// waiters outnumber cores; parking is bounded, so a missed wakeup
    /// costs at most one cap interval — no unlock-side notification is
    /// needed, which matters because anonymous registers give the
    /// releasing process nobody to address.
    SpinYieldPark,
}

impl Backoff {
    /// Attempts served by a bare spin hint before the ladder escalates.
    const SPIN_ATTEMPTS: u32 = 8;

    /// Attempts (beyond the spin band) served by `yield_now` before
    /// [`Backoff::SpinYieldPark`] starts parking.
    const YIELD_ATTEMPTS: u32 = 24;

    /// Upper bound on a single park interval.
    pub const PARK_CAP: Duration = Duration::from_millis(1);

    /// Waits according to this policy for the given 0-based `attempt`.
    ///
    /// Callers reset `attempt` whenever they observe progress; the ladder
    /// is monotone in `attempt`, so resetting re-arms the low-latency
    /// bands.
    pub fn wait(self, attempt: u32) {
        match self {
            Backoff::Spin => std::hint::spin_loop(),
            Backoff::SpinYield => {
                if attempt < Self::SPIN_ATTEMPTS {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            Backoff::SpinYieldPark => {
                if attempt < Self::SPIN_ATTEMPTS {
                    std::hint::spin_loop();
                } else if attempt < Self::SPIN_ATTEMPTS + Self::YIELD_ATTEMPTS {
                    std::thread::yield_now();
                } else {
                    let exp = (attempt - Self::SPIN_ATTEMPTS - Self::YIELD_ATTEMPTS).min(10);
                    let slice = Duration::from_micros(1u64 << exp).min(Self::PARK_CAP);
                    std::thread::park_timeout(slice);
                }
            }
        }
    }

    /// Short machine-readable name, used as the bench-report key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backoff::Spin => "spin",
            Backoff::SpinYield => "spin-yield",
            Backoff::SpinYieldPark => "spin-yield-park",
        }
    }

    /// Every policy, in escalation order — the `lock_bench` axis.
    #[must_use]
    pub fn all() -> [Backoff; 3] {
        [Backoff::Spin, Backoff::SpinYield, Backoff::SpinYieldPark]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;

    #[test]
    fn full_view_yields_none() {
        let id = PidPool::sequential().mint();
        let view = [Slot::from(id); 4];
        for p in [
            FreeSlotPolicy::FirstFree,
            FreeSlotPolicy::LastFree,
            FreeSlotPolicy::RotatingFrom(3),
        ] {
            assert_eq!(p.choose(&view), None);
        }
    }

    #[test]
    fn empty_view_respects_policy() {
        let view = [Slot::BOTTOM; 5];
        assert_eq!(FreeSlotPolicy::FirstFree.choose(&view), Some(0));
        assert_eq!(FreeSlotPolicy::LastFree.choose(&view), Some(4));
        assert_eq!(FreeSlotPolicy::RotatingFrom(3).choose(&view), Some(3));
        assert_eq!(FreeSlotPolicy::RotatingFrom(7).choose(&view), Some(2)); // 7 mod 5
    }

    #[test]
    fn rotating_wraps_past_owned_entries() {
        let id = PidPool::sequential().mint();
        let view = [Slot::BOTTOM, Slot::from(id), Slot::from(id), Slot::from(id)];
        assert_eq!(FreeSlotPolicy::RotatingFrom(1).choose(&view), Some(0));
    }

    #[test]
    fn all_policies_return_a_bottom_index() {
        let id = PidPool::sequential().mint();
        let view = [
            Slot::from(id),
            Slot::BOTTOM,
            Slot::from(id),
            Slot::BOTTOM,
            Slot::from(id),
        ];
        for p in [
            FreeSlotPolicy::FirstFree,
            FreeSlotPolicy::LastFree,
            FreeSlotPolicy::RotatingFrom(0),
            FreeSlotPolicy::RotatingFrom(2),
            FreeSlotPolicy::RotatingFrom(4),
        ] {
            let x = p.choose(&view).unwrap();
            assert!(view[x].is_bottom(), "{p:?} chose occupied slot {x}");
        }
    }

    #[test]
    fn default_is_first_free() {
        assert_eq!(FreeSlotPolicy::default(), FreeSlotPolicy::FirstFree);
    }

    #[test]
    fn backoff_names_are_distinct_and_default_is_spin_yield() {
        let names: Vec<_> = Backoff::all().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["spin", "spin-yield", "spin-yield-park"]);
        assert_eq!(Backoff::default(), Backoff::SpinYield);
    }

    #[test]
    fn backoff_park_interval_is_capped() {
        // Deep into the park band the wait must stay bounded by the cap
        // (plus scheduler noise) — an unbounded doze would turn a missed
        // wakeup into a stall.
        let start = std::time::Instant::now();
        Backoff::SpinYieldPark.wait(u32::MAX);
        assert!(
            start.elapsed() < Backoff::PARK_CAP + Duration::from_millis(400),
            "park interval must be capped"
        );
    }

    #[test]
    fn every_backoff_policy_returns_promptly_in_the_spin_band() {
        for b in Backoff::all() {
            for attempt in 0..4 {
                b.wait(attempt); // must not block
            }
        }
    }
}
