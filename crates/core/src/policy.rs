//! Free-register choice policies for Algorithm 1.
//!
//! Line 6 of Algorithm 1 writes the process identity into *some* register
//! whose entry was ⊥ in the latest snapshot — the paper leaves the choice
//! free, so correctness must not depend on it.  Making the policy explicit
//! lets tests and the model checker explore adversarial choices, and it
//! keeps automaton state deterministic (a requirement for state hashing).

use amx_ids::Slot;

/// Deterministic rule choosing a ⊥ entry from a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FreeSlotPolicy {
    /// Lowest free local index (the natural loop order).
    #[default]
    FirstFree,
    /// Highest free local index.
    LastFree,
    /// First free local index at or after `start` (cyclically) — lets
    /// experiments spread processes across the array or align them
    /// adversarially.
    RotatingFrom(
        /// Scan start offset.
        usize,
    ),
}

impl FreeSlotPolicy {
    /// Picks a free index from `view`, or `None` when the view is full.
    ///
    /// # Example
    ///
    /// ```
    /// use amx_core::policy::FreeSlotPolicy;
    /// use amx_ids::{PidPool, Slot};
    ///
    /// let id = PidPool::sequential().mint();
    /// let view = [Slot::from(id), Slot::BOTTOM, Slot::BOTTOM];
    /// assert_eq!(FreeSlotPolicy::FirstFree.choose(&view), Some(1));
    /// assert_eq!(FreeSlotPolicy::LastFree.choose(&view), Some(2));
    /// assert_eq!(FreeSlotPolicy::RotatingFrom(2).choose(&view), Some(2));
    /// ```
    #[must_use]
    pub fn choose(&self, view: &[Slot]) -> Option<usize> {
        let m = view.len();
        match *self {
            FreeSlotPolicy::FirstFree => view.iter().position(|s| s.is_bottom()),
            FreeSlotPolicy::LastFree => view.iter().rposition(|s| s.is_bottom()),
            FreeSlotPolicy::RotatingFrom(start) => (0..m)
                .map(|k| (start + k) % m)
                .find(|&x| view[x].is_bottom()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;

    #[test]
    fn full_view_yields_none() {
        let id = PidPool::sequential().mint();
        let view = [Slot::from(id); 4];
        for p in [
            FreeSlotPolicy::FirstFree,
            FreeSlotPolicy::LastFree,
            FreeSlotPolicy::RotatingFrom(3),
        ] {
            assert_eq!(p.choose(&view), None);
        }
    }

    #[test]
    fn empty_view_respects_policy() {
        let view = [Slot::BOTTOM; 5];
        assert_eq!(FreeSlotPolicy::FirstFree.choose(&view), Some(0));
        assert_eq!(FreeSlotPolicy::LastFree.choose(&view), Some(4));
        assert_eq!(FreeSlotPolicy::RotatingFrom(3).choose(&view), Some(3));
        assert_eq!(FreeSlotPolicy::RotatingFrom(7).choose(&view), Some(2)); // 7 mod 5
    }

    #[test]
    fn rotating_wraps_past_owned_entries() {
        let id = PidPool::sequential().mint();
        let view = [Slot::BOTTOM, Slot::from(id), Slot::from(id), Slot::from(id)];
        assert_eq!(FreeSlotPolicy::RotatingFrom(1).choose(&view), Some(0));
    }

    #[test]
    fn all_policies_return_a_bottom_index() {
        let id = PidPool::sequential().mint();
        let view = [
            Slot::from(id),
            Slot::BOTTOM,
            Slot::from(id),
            Slot::BOTTOM,
            Slot::from(id),
        ];
        for p in [
            FreeSlotPolicy::FirstFree,
            FreeSlotPolicy::LastFree,
            FreeSlotPolicy::RotatingFrom(0),
            FreeSlotPolicy::RotatingFrom(2),
            FreeSlotPolicy::RotatingFrom(4),
        ] {
            let x = p.choose(&view).unwrap();
            assert!(view[x].is_bottom(), "{p:?} chose occupied slot {x}");
        }
    }

    #[test]
    fn default_is_first_free() {
        assert_eq!(FreeSlotPolicy::default(), FreeSlotPolicy::FirstFree);
    }
}
