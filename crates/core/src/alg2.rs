//! Algorithm 2: symmetric deadlock-free mutex over anonymous RMW registers.
//!
//! Faithful step-machine rendering of Figure 2 of the paper.  Line map:
//!
//! ```text
//! lock():
//!   (1)  repeat
//!   (2)    for each x: R.compare&swap(x, ⊥, id)         — [`Alg2State::CasSweep`]
//!   (3)    for each x: view[x] ← R.read(x)              — [`Alg2State::ReadLoop`]
//!   (4)    most_present ← max multiplicity in view
//!   (5)    owned ← |{x : view[x] = id}|
//!   (6)    if owned < most_present then
//!   (7)      for each x with view[x] = id: R.write(x, ⊥) — [`Alg2State::Resign`]
//!   (8-10)   repeat read all until all ⊥                 — [`Alg2State::WaitEmpty`]
//!   (12) until owned > m/2                               — `Acquired` after the read loop
//!
//! unlock():
//!   (13) for each x: R.compare&swap(x, id, ⊥)            — [`Alg2State::UnlockSweep`]
//! ```
//!
//! The line-3 view is an **asynchronous collect** — each read is its own
//! atomic step — not a snapshot; Algorithm 2 never snapshots, which is
//! the complexity contrast the paper draws with Algorithm 1 (majority
//! ownership suffices instead of all-`m` ownership).

use amx_ids::codec::{PidMap, RegMap};
use amx_ids::{view, Pid, Slot};
use amx_sim::automaton::{Automaton, Outcome};
use amx_sim::encode::{self, EncodeState};
use amx_sim::mem::MemoryOps;

use crate::bits::{next_index, owned_mask};
use crate::spec::{Model, MutexSpec};

/// Algorithm 2, instantiated for one process.
///
/// Implements [`Automaton`]; drive it with `amx-sim` or through the
/// threaded wrapper [`crate::threaded::RmwAnonLock`].
#[derive(Debug, Clone)]
pub struct Alg2Automaton {
    id: Pid,
    m: usize,
}

impl Alg2Automaton {
    /// Creates the automaton for process `id` under `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RMW-model spec.  (Invalid `(n, m)`
    /// pairs are deliberately allowed — see [`MutexSpec::rmw_unchecked`].)
    #[must_use]
    pub fn new(spec: MutexSpec, id: Pid) -> Self {
        assert_eq!(
            spec.model(),
            Model::Rmw,
            "Algorithm 2 runs on RMW registers"
        );
        Alg2Automaton { id, m: spec.m() }
    }

    /// The process identity this automaton competes as.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.id
    }

    /// The memory size `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Decides after the line-3 collect completes: enter, resign, or retry.
    fn decide(&self, state: &mut Alg2State, collected: &[Slot]) -> Outcome {
        let owned = view::owned_count(collected, self.id);
        let most_present = view::most_present(collected);
        if owned < most_present {
            // Lines 6-7: resign.
            let targets = owned_mask(collected, self.id);
            match next_index(targets, 0) {
                Some(pos) => *state = Alg2State::Resign { targets, pos },
                // Nothing to erase (owned = 0): go straight to waiting.
                None => *state = Alg2State::WaitEmpty { x: 0, clean: true },
            }
            Outcome::Progress
        } else if 2 * owned > self.m {
            // Line 12: majority — enter the critical section.
            *state = Alg2State::Idle;
            Outcome::Acquired
        } else {
            // Keep competing: next iteration of the outer repeat loop.
            *state = Alg2State::CasSweep { x: 0 };
            Outcome::Progress
        }
    }
}

/// Execution state of [`Alg2Automaton`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Alg2State {
    /// No pending invocation (remainder or critical section).
    Idle,
    /// Line 2: about to `compare&swap(x, ⊥, id)`.
    CasSweep {
        /// Sweep cursor.
        x: usize,
    },
    /// Line 3: about to read local index `x`; earlier reads accumulated.
    ReadLoop {
        /// Read cursor.
        x: usize,
        /// Values read so far (`x` entries).
        collected: Vec<Slot>,
    },
    /// Line 7: erasing own entries.
    Resign {
        /// Bitmask of own indices from the line-3 view.
        targets: u64,
        /// Current cursor (a set bit of `targets`).
        pos: usize,
    },
    /// Lines 8-10: reading all registers, waiting for an all-⊥ pass.
    WaitEmpty {
        /// Read cursor.
        x: usize,
        /// Whether every register read so far in this pass was ⊥.
        clean: bool,
    },
    /// Line 13: about to `compare&swap(x, id, ⊥)`.
    UnlockSweep {
        /// Sweep cursor.
        x: usize,
    },
}

impl Automaton for Alg2Automaton {
    type State = Alg2State;

    fn init_state(&self) -> Alg2State {
        Alg2State::Idle
    }

    /// A crashed process reboots with no memory of its invocation — all
    /// of `Alg2State` (sweep cursors, ownership tallies) is private, so
    /// the reset is total.  Under `CrashMode::StaleClaims` the CAS
    /// claims it left behind stay claimed; whether survivors still
    /// assemble a majority depends on how much the ghost held, which is
    /// exactly what the `--crashes` sweep points measure.
    fn crash_state(&self) -> Alg2State {
        Alg2State::Idle
    }

    fn start_lock(&self, state: &mut Alg2State) {
        debug_assert_eq!(
            *state,
            Alg2State::Idle,
            "lock() while an invocation is pending"
        );
        *state = Alg2State::CasSweep { x: 0 };
    }

    fn start_unlock(&self, state: &mut Alg2State) {
        debug_assert_eq!(
            *state,
            Alg2State::Idle,
            "unlock() while an invocation is pending"
        );
        *state = Alg2State::UnlockSweep { x: 0 };
    }

    fn step<M: MemoryOps + ?Sized>(&self, state: &mut Alg2State, mem: &mut M) -> Outcome {
        match state {
            Alg2State::CasSweep { x } => {
                let x = *x;
                let _ = mem.compare_and_swap(x, Slot::BOTTOM, Slot::from(self.id)); // line 2
                if x + 1 < self.m {
                    *state = Alg2State::CasSweep { x: x + 1 };
                } else {
                    *state = Alg2State::ReadLoop {
                        x: 0,
                        collected: Vec::with_capacity(self.m),
                    };
                }
                Outcome::Progress
            }
            Alg2State::ReadLoop { x, collected } => {
                let v = mem.read(*x); // line 3
                collected.push(v);
                if *x + 1 < self.m {
                    *x += 1;
                    Outcome::Progress
                } else {
                    let view = std::mem::take(collected);
                    self.decide(state, &view)
                }
            }
            Alg2State::Resign { targets, pos } => {
                let (targets, pos) = (*targets, *pos);
                mem.write(pos, Slot::BOTTOM); // line 7
                match next_index(targets, pos + 1) {
                    Some(next) => *state = Alg2State::Resign { targets, pos: next },
                    None => *state = Alg2State::WaitEmpty { x: 0, clean: true },
                }
                Outcome::Progress
            }
            Alg2State::WaitEmpty { x, clean } => {
                let (x, clean) = (*x, *clean);
                let pass_clean = clean && mem.read(x).is_bottom(); // line 9
                *state = if x + 1 < self.m {
                    Alg2State::WaitEmpty {
                        x: x + 1,
                        clean: pass_clean,
                    }
                } else if pass_clean {
                    // Line 10 satisfied: the outer loop resumes at line 2
                    // (owned < most_present ≤ m/2 forces another iteration).
                    Alg2State::CasSweep { x: 0 }
                } else {
                    Alg2State::WaitEmpty { x: 0, clean: true }
                };
                Outcome::Progress
            }
            Alg2State::UnlockSweep { x } => {
                let x = *x;
                let _ = mem.compare_and_swap(x, Slot::from(self.id), Slot::BOTTOM); // line 13
                if x + 1 < self.m {
                    *state = Alg2State::UnlockSweep { x: x + 1 };
                    Outcome::Progress
                } else {
                    *state = Alg2State::Idle;
                    Outcome::Released
                }
            }
            Alg2State::Idle => panic!("step without pending invocation"),
        }
    }

    fn pid(&self) -> Option<Pid> {
        Some(self.id)
    }

    fn symmetry_class(&self) -> Option<u64> {
        // Algorithm 2 has no policy knobs: any two processes over the
        // same memory size are identical up to their identity.
        Some(self.m as u64)
    }
}

impl EncodeState for Alg2State {
    fn encode_with(&self, pids: &PidMap, _regs: &RegMap, out: &mut Vec<u8>) {
        match self {
            Alg2State::Idle => encode::put_u8(0, out),
            Alg2State::CasSweep { x } => {
                encode::put_u8(1, out);
                encode::put_u8(*x as u8, out);
            }
            Alg2State::ReadLoop { x, collected } => {
                // The only alg state embedding identities: the partial
                // line-3 collect must be relabeled along with the
                // registers for symmetry reduction to stay consistent.
                encode::put_u8(2, out);
                encode::put_u8(*x as u8, out);
                encode::put_u8(collected.len() as u8, out);
                for &slot in collected {
                    encode::put_slot(slot, pids, out);
                }
            }
            Alg2State::Resign { targets, pos } => {
                encode::put_u8(3, out);
                encode::put_u64(*targets, out);
                encode::put_u8(*pos as u8, out);
            }
            Alg2State::WaitEmpty { x, clean } => {
                encode::put_u8(4, out);
                encode::put_u8(*x as u8, out);
                encode::put_u8(u8::from(*clean), out);
            }
            Alg2State::UnlockSweep { x } => {
                encode::put_u8(5, out);
                encode::put_u8(*x as u8, out);
            }
        }
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(match encode::take_u8(bytes)? {
            0 => Alg2State::Idle,
            1 => Alg2State::CasSweep {
                x: encode::take_u8(bytes)? as usize,
            },
            2 => {
                let x = encode::take_u8(bytes)? as usize;
                let len = encode::take_u8(bytes)? as usize;
                let mut collected = Vec::with_capacity(len);
                for _ in 0..len {
                    collected.push(encode::take_slot(bytes)?);
                }
                Alg2State::ReadLoop { x, collected }
            }
            3 => Alg2State::Resign {
                targets: encode::take_u64(bytes)?,
                pos: encode::take_u8(bytes)? as usize,
            },
            4 => Alg2State::WaitEmpty {
                x: encode::take_u8(bytes)? as usize,
                clean: match encode::take_u8(bytes)? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            5 => Alg2State::UnlockSweep {
                x: encode::take_u8(bytes)? as usize,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;
    use amx_registers::Adversary;
    use amx_sim::mem::{MemoryModel, SimMemory};

    fn setup(n: usize, m: usize) -> (Vec<Alg2Automaton>, Vec<Alg2State>, SimMemory) {
        let ids = PidPool::sequential().mint_many(n);
        let spec = MutexSpec::rmw_unchecked(n.max(1), m);
        let automata: Vec<Alg2Automaton> = ids
            .into_iter()
            .map(|id| Alg2Automaton::new(spec, id))
            .collect();
        let states = automata.iter().map(Automaton::init_state).collect();
        let mem = SimMemory::new(MemoryModel::Rmw, m, &Adversary::Identity, n).unwrap();
        (automata, states, mem)
    }

    fn drive_to_acquire(
        a: &Alg2Automaton,
        st: &mut Alg2State,
        mem: &mut SimMemory,
        i: usize,
        budget: usize,
    ) -> usize {
        for step in 1..=budget {
            if a.step(st, &mut mem.view(i)) == Outcome::Acquired {
                return step;
            }
        }
        panic!("did not acquire within {budget} steps");
    }

    #[test]
    fn solo_acquires_in_one_sweep_and_collect() {
        let (a, mut st, mut mem) = {
            let (mut a, mut s, m) = setup(1, 5);
            (a.remove(0), s.remove(0), m)
        };
        a.start_lock(&mut st);
        // m CAS steps + m read steps, acquiring on the last read.
        let steps = drive_to_acquire(&a, &mut st, &mut mem, 0, 20);
        assert_eq!(steps, 2 * 5);
        assert!(mem.slots().iter().all(|s| s.is_owned_by(a.id())));
    }

    #[test]
    fn solo_single_register_memory() {
        // The degenerate m = 1 configuration the RMW model permits.
        let (a, mut st, mut mem) = {
            let (mut a, mut s, m) = setup(1, 1);
            (a.remove(0), s.remove(0), m)
        };
        a.start_lock(&mut st);
        assert_eq!(drive_to_acquire(&a, &mut st, &mut mem, 0, 5), 2);
        a.start_unlock(&mut st);
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Released);
        assert!(mem.slots()[0].is_bottom());
    }

    #[test]
    fn unlock_erases_only_own_registers() {
        let (automata, mut states, mut mem) = setup(2, 3);
        let (a, b) = (&automata[0], &automata[1]);
        // a owns registers 0 and 1; b owns 2.
        mem.view(0).write(0, Slot::from(a.id()));
        mem.view(0).write(1, Slot::from(a.id()));
        mem.view(0).write(2, Slot::from(b.id()));
        states[0] = Alg2State::Idle;
        a.start_unlock(&mut states[0]);
        for _ in 0..3 {
            let _ = a.step(&mut states[0], &mut mem.view(0));
        }
        assert!(mem.slots()[0].is_bottom());
        assert!(mem.slots()[1].is_bottom());
        assert!(
            mem.slots()[2].is_owned_by(b.id()),
            "line 13 must not clobber others"
        );
    }

    #[test]
    fn minority_resigns_and_waits() {
        let (automata, mut states, mut mem) = setup(2, 5);
        let (a, b) = (&automata[0], &automata[1]);
        // Pre-claim: a on {0,1}, b on {2,3,4}; then let a run lock().
        for (x, id) in [
            (0, a.id()),
            (1, a.id()),
            (2, b.id()),
            (3, b.id()),
            (4, b.id()),
        ] {
            mem.view(0).write(x, Slot::from(id));
        }
        a.start_lock(&mut states[0]);
        // CAS sweep (all fail: nothing is ⊥) + read loop.
        for _ in 0..10 {
            assert_eq!(a.step(&mut states[0], &mut mem.view(0)), Outcome::Progress);
        }
        // owned(2) < most_present(3) → resign targets {0,1}.
        assert_eq!(
            states[0],
            Alg2State::Resign {
                targets: 0b00011,
                pos: 0
            }
        );
        // Two erase writes, then the wait loop.
        let _ = a.step(&mut states[0], &mut mem.view(0));
        let _ = a.step(&mut states[0], &mut mem.view(0));
        assert!(mem.slots()[0].is_bottom() && mem.slots()[1].is_bottom());
        assert_eq!(states[0], Alg2State::WaitEmpty { x: 0, clean: true });
        // b's registers are still claimed, so the wait pass is not clean
        // and a must keep waiting.
        for _ in 0..10 {
            let _ = a.step(&mut states[0], &mut mem.view(0));
        }
        assert!(matches!(states[0], Alg2State::WaitEmpty { .. }));
        // Release b's registers; the next full pass lets a re-enter the
        // competition.
        for x in 2..5 {
            mem.view(0).write(x, Slot::BOTTOM);
        }
        loop {
            let _ = a.step(&mut states[0], &mut mem.view(0));
            if states[0] == (Alg2State::CasSweep { x: 0 }) {
                break;
            }
            assert!(matches!(states[0], Alg2State::WaitEmpty { .. }));
        }
    }

    #[test]
    fn majority_enters_despite_minority_presence() {
        let (automata, mut states, mut mem) = setup(2, 5);
        let (a, b) = (&automata[0], &automata[1]);
        // a on {0,1,2} (majority), b on {3}.
        for (x, id) in [(0, a.id()), (1, a.id()), (2, a.id()), (3, b.id())] {
            mem.view(0).write(x, Slot::from(id));
        }
        a.start_lock(&mut states[0]);
        // CAS sweep claims 4 as well → a owns 4 of 5.
        let steps = drive_to_acquire(a, &mut states[0], &mut mem, 0, 20);
        assert_eq!(steps, 2 * 5);
        assert_eq!(
            mem.slots().iter().filter(|s| s.is_owned_by(a.id())).count(),
            4
        );
    }

    #[test]
    fn exact_majority_boundary() {
        // owned = ⌈m/2⌉ on even m would NOT be a majority… but valid specs
        // never have even m; test the arithmetic anyway via unchecked m=4:
        // owned=2 is not > 4/2, so the process must keep competing.
        let mut pool = PidPool::sequential();
        let (me, other) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rmw_unchecked(2, 4);
        let a = Alg2Automaton::new(spec, me);
        let collected = vec![
            Slot::from(me),
            Slot::from(me),
            Slot::from(other),
            Slot::from(other),
        ];
        let mut st = Alg2State::Idle;
        assert_eq!(a.decide(&mut st, &collected), Outcome::Progress);
        assert_eq!(
            st,
            Alg2State::CasSweep { x: 0 },
            "tie: retry, neither resign nor enter"
        );
    }

    #[test]
    fn resign_with_nothing_owned_skips_to_wait() {
        let mut pool = PidPool::sequential();
        let (me, other) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rmw_unchecked(2, 3);
        let a = Alg2Automaton::new(spec, me);
        let collected = vec![Slot::from(other), Slot::from(other), Slot::from(other)];
        let mut st = Alg2State::Idle;
        assert_eq!(a.decide(&mut st, &collected), Outcome::Progress);
        assert_eq!(st, Alg2State::WaitEmpty { x: 0, clean: true });
    }

    #[test]
    fn invalid_even_split_loops_without_resigning() {
        // m = 2, both own 1: owned = most_present, owned ≤ m/2 — the
        // decide step must neither resign nor enter, just retry.
        let mut pool = PidPool::sequential();
        let (p, q) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rmw_unchecked(2, 2);
        let a = Alg2Automaton::new(spec, p);
        let collected = vec![Slot::from(p), Slot::from(q)];
        let mut st = Alg2State::Idle;
        assert_eq!(a.decide(&mut st, &collected), Outcome::Progress);
        assert_eq!(st, Alg2State::CasSweep { x: 0 });
    }

    #[test]
    fn wait_empty_restarts_on_dirty_pass_and_exits_on_clean() {
        let (automata, _, mut mem) = setup(2, 3);
        let a = &automata[0];
        let b_id = automata[1].id();
        // One register still claimed by b: the pass ends dirty.
        mem.view(0).write(2, Slot::from(b_id));
        let mut st = Alg2State::WaitEmpty { x: 0, clean: true };
        for _ in 0..3 {
            let _ = a.step(&mut st, &mut mem.view(0));
        }
        assert_eq!(
            st,
            Alg2State::WaitEmpty { x: 0, clean: true },
            "dirty pass restarts"
        );
        // Clear it: the next full pass is clean and re-enters the sweep.
        mem.view(0).write(2, Slot::BOTTOM);
        for _ in 0..3 {
            let _ = a.step(&mut st, &mut mem.view(0));
        }
        assert_eq!(st, Alg2State::CasSweep { x: 0 });
    }

    #[test]
    fn wait_empty_is_not_fooled_by_late_bottoms() {
        // Register 0 is dirty at the start of the pass; even if it is
        // cleared before the pass ends, the pass already failed — line 10
        // requires one *consistent* all-⊥ scan... but a scan that read ⊥
        // everywhere IS clean even if values changed afterwards.  Check
        // the precise semantics: dirt seen at x = 0 poisons the pass.
        let (automata, _, mut mem) = setup(2, 3);
        let a = &automata[0];
        let b_id = automata[1].id();
        mem.view(0).write(0, Slot::from(b_id));
        let mut st = Alg2State::WaitEmpty { x: 0, clean: true };
        let _ = a.step(&mut st, &mut mem.view(0)); // reads dirty register 0
        mem.view(0).write(0, Slot::BOTTOM); // too late for this pass
        let _ = a.step(&mut st, &mut mem.view(0));
        let _ = a.step(&mut st, &mut mem.view(0));
        assert_eq!(
            st,
            Alg2State::WaitEmpty { x: 0, clean: true },
            "poisoned pass restarts"
        );
    }

    #[test]
    #[should_panic(expected = "RMW registers")]
    fn rw_spec_is_rejected() {
        let id = PidPool::sequential().mint();
        let _ = Alg2Automaton::new(MutexSpec::rw_unchecked(2, 3), id);
    }

    #[test]
    #[should_panic(expected = "step without pending invocation")]
    fn stepping_idle_panics() {
        let (mut automata, mut states, mut mem) = setup(1, 3);
        let a = automata.remove(0);
        let _ = a.step(&mut states[0], &mut mem.view(0));
    }
}
