//! Algorithm 1: symmetric deadlock-free mutex over anonymous RW registers.
//!
//! Faithful step-machine rendering of Figure 1 of the paper.  Line map:
//!
//! ```text
//! lock():
//!   (3)  repeat
//!   (4)    repeat view ← R.snapshot()
//!          until owned() > 0 ∨ ∀x view[x] = ⊥          — [`Alg1State::Snap`]
//!   (5)    if ∃x view[x] = ⊥
//!   (6)      then R.write(x, id)                        — [`Alg1State::WriteFree`]
//!   (7,8)    else cnt ← |{view[1..m]}|
//!   (9)           if owned() < m/cnt then shrink()      — [`Alg1State::ShrinkRead`]/[`ShrinkWrite`]
//!   (11) until ∀x view[x] = id                          — `Acquired` at the snapshot
//!
//! unlock():
//!   (12) shrink()                                       — same shrink states, `unlocking = true`
//!
//! shrink():
//!   (2)  for each x with view[x] = id:
//!          if R.read(x) = id then R.write(x, ⊥)
//! ```
//!
//! The withdrawal test `owned() < m/cnt` is evaluated exactly (as the
//! rational comparison `owned · cnt < m`), because the entire tie-breaking
//! argument rests on `gcd(cnt, m) = 1`: on a full view the `cnt`
//! competitors' ownership counts sum to `m`, so they cannot all equal
//! `m/cnt` — someone is strictly below average and withdraws.
//!
//! One [`crate::FreeSlotPolicy`] decision is left open by the paper (which
//! free register to write); it is explicit configuration here.

use std::cell::RefCell;

use amx_ids::codec::{PidMap, RegMap};
use amx_ids::{view, Pid, Slot};
use amx_sim::automaton::{Automaton, Outcome};
use amx_sim::encode::{self, EncodeState};
use amx_sim::mem::MemoryOps;

use crate::bits::{next_index, owned_mask};
use crate::policy::FreeSlotPolicy;
use crate::spec::{Model, MutexSpec};

thread_local! {
    /// Reusable snapshot buffer for the line-4 hot loop: one snapshot per
    /// `Snap` step, zero allocations after warm-up.  Thread-local (rather
    /// than per-automaton) so automata stay `Sync` for the parallel
    /// model-checker frontier.
    static SNAP_SCRATCH: RefCell<Vec<Slot>> = const { RefCell::new(Vec::new()) };
}

/// Algorithm 1, instantiated for one process.
///
/// Implements [`Automaton`]; drive it with `amx-sim` or through the
/// threaded wrapper [`crate::threaded::RwAnonLock`].
#[derive(Debug, Clone)]
pub struct Alg1Automaton {
    id: Pid,
    m: usize,
    policy: FreeSlotPolicy,
}

impl Alg1Automaton {
    /// Creates the automaton for process `id` under `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RW-model spec.  (Invalid `(n, m)` pairs
    /// are deliberately allowed — see [`MutexSpec::rw_unchecked`] — so the
    /// lower-bound experiments can run the algorithm outside its
    /// correctness envelope.)
    #[must_use]
    pub fn new(spec: MutexSpec, id: Pid) -> Self {
        assert_eq!(spec.model(), Model::Rw, "Algorithm 1 runs on RW registers");
        Alg1Automaton {
            id,
            m: spec.m(),
            policy: FreeSlotPolicy::FirstFree,
        }
    }

    /// Sets the free-register choice policy (default first-free).
    #[must_use]
    pub fn with_policy(mut self, policy: FreeSlotPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The process identity this automaton competes as.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.id
    }

    /// The memory size `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Handles a completed shrink during `lock()` (return to the outer
    /// loop) or `unlock()` (the operation is finished).
    fn shrink_done(&self, state: &mut Alg1State, unlocking: bool) -> Outcome {
        if unlocking {
            *state = Alg1State::Idle;
            Outcome::Released
        } else {
            *state = Alg1State::Snap;
            Outcome::Progress
        }
    }

    /// Advances the shrink cursor past `pos`; either moves to the read of
    /// the next target or finishes the shrink.
    fn shrink_advance(
        &self,
        state: &mut Alg1State,
        targets: u64,
        pos: usize,
        unlocking: bool,
    ) -> Outcome {
        match next_index(targets, pos + 1) {
            Some(next) => {
                *state = Alg1State::ShrinkRead {
                    targets,
                    pos: next,
                    unlocking,
                };
                Outcome::Progress
            }
            None => self.shrink_done(state, unlocking),
        }
    }
}

/// Execution state of [`Alg1Automaton`] — the program counter plus the
/// bounded data the next step needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alg1State {
    /// No pending invocation (remainder or critical section).
    Idle,
    /// About to take the line-4 snapshot.
    Snap,
    /// About to execute line 6: write own id into free local index `x`.
    WriteFree {
        /// The free index chosen by the policy from the latest view.
        x: usize,
    },
    /// Inside `shrink()`: about to read local index `pos`.
    ShrinkRead {
        /// Bitmask of local indices owned in the view that started the shrink.
        targets: u64,
        /// Current cursor (a set bit of `targets`).
        pos: usize,
        /// `true` when this shrink is the body of `unlock()`.
        unlocking: bool,
    },
    /// Inside `shrink()`: the read at `pos` returned own id; about to
    /// overwrite it with ⊥.
    ShrinkWrite {
        /// Bitmask of local indices owned in the view that started the shrink.
        targets: u64,
        /// Current cursor (a set bit of `targets`).
        pos: usize,
        /// `true` when this shrink is the body of `unlock()`.
        unlocking: bool,
    },
}

impl Automaton for Alg1Automaton {
    type State = Alg1State;

    fn init_state(&self) -> Alg1State {
        Alg1State::Idle
    }

    /// A crashed process reboots with no memory of its invocation: all
    /// of `Alg1State` (snapshot view, write cursor, shrink position) is
    /// private, so the reset is total.  Note the asymmetry the model
    /// checker finds: under `CrashMode::StaleClaims` the registers this
    /// process claimed stay claimed forever, and Algorithm 1's averaging
    /// argument counts the ghost as a competitor that never withdraws —
    /// deadlock-freedom does *not* survive stale crashes here.
    fn crash_state(&self) -> Alg1State {
        Alg1State::Idle
    }

    fn start_lock(&self, state: &mut Alg1State) {
        debug_assert_eq!(
            *state,
            Alg1State::Idle,
            "lock() while an invocation is pending"
        );
        *state = Alg1State::Snap;
    }

    fn start_unlock(&self, state: &mut Alg1State) {
        debug_assert_eq!(
            *state,
            Alg1State::Idle,
            "unlock() while an invocation is pending"
        );
        // unlock() = shrink() over the view that admitted us to the CS,
        // which was all-own: every local index is a target.
        let full = if self.m == 64 {
            u64::MAX
        } else {
            (1u64 << self.m) - 1
        };
        *state = Alg1State::ShrinkRead {
            targets: full,
            pos: 0,
            unlocking: true,
        };
    }

    fn step<M: MemoryOps + ?Sized>(&self, state: &mut Alg1State, mem: &mut M) -> Outcome {
        match *state {
            Alg1State::Snap => SNAP_SCRATCH.with(|buf| {
                let mut snap = buf.borrow_mut();
                mem.snapshot_into(&mut snap); // line 4
                let owned = view::owned_count(&snap, self.id);
                if owned == self.m {
                    // Until-condition of line 11 — the CS is entered at the
                    // linearization point of this snapshot.
                    *state = Alg1State::Idle;
                    return Outcome::Acquired;
                }
                if owned == 0 && !view::is_empty(&snap) {
                    // Inner loop (line 4) keeps spinning.
                    return Outcome::Progress;
                }
                if let Some(x) = self.policy.choose(&snap) {
                    // Line 5 true: compete for a free register.
                    *state = Alg1State::WriteFree { x };
                } else {
                    // Full view: withdrawal test of lines 8-9, evaluated as
                    // the exact rational comparison owned < m/cnt.
                    let cnt = view::distinct_competitors(&snap);
                    if owned * cnt < self.m {
                        let targets = owned_mask(&snap, self.id);
                        debug_assert!(targets != 0, "full view with owned ≥ 1");
                        let pos = next_index(targets, 0).expect("nonempty targets");
                        *state = Alg1State::ShrinkRead {
                            targets,
                            pos,
                            unlocking: false,
                        };
                    }
                    // Otherwise stay on Snap: re-enter the outer loop.
                }
                Outcome::Progress
            }),
            Alg1State::WriteFree { x } => {
                mem.write(x, Slot::from(self.id)); // line 6
                *state = Alg1State::Snap;
                Outcome::Progress
            }
            Alg1State::ShrinkRead {
                targets,
                pos,
                unlocking,
            } => {
                if mem.read(pos).is_owned_by(self.id) {
                    // line 2: still ours — erase it next step.
                    *state = Alg1State::ShrinkWrite {
                        targets,
                        pos,
                        unlocking,
                    };
                    Outcome::Progress
                } else {
                    self.shrink_advance(state, targets, pos, unlocking)
                }
            }
            Alg1State::ShrinkWrite {
                targets,
                pos,
                unlocking,
            } => {
                mem.write(pos, Slot::BOTTOM);
                self.shrink_advance(state, targets, pos, unlocking)
            }
            Alg1State::Idle => panic!("step without pending invocation"),
        }
    }

    fn pid(&self) -> Option<Pid> {
        Some(self.id)
    }

    fn symmetry_class(&self) -> Option<u64> {
        // Interchangeable iff the configuration (m, policy) matches — the
        // identity itself is erased, which is the whole point.
        let policy_token = match self.policy {
            FreeSlotPolicy::FirstFree => 0u64,
            FreeSlotPolicy::LastFree => 1,
            FreeSlotPolicy::RotatingFrom(k) => 2 + k as u64,
        };
        Some((self.m as u64) << 32 | policy_token)
    }
}

impl EncodeState for Alg1State {
    fn encode_with(&self, _pids: &PidMap, _regs: &RegMap, out: &mut Vec<u8>) {
        // No identities are embedded (ownership lives in the registers),
        // and the cursor/bitmask fields are *local* register names —
        // invariant under the wreath action, which relabels only the
        // physical array — so both relabeling hooks are no-ops.
        match *self {
            Alg1State::Idle => encode::put_u8(0, out),
            Alg1State::Snap => encode::put_u8(1, out),
            Alg1State::WriteFree { x } => {
                encode::put_u8(2, out);
                encode::put_u8(x as u8, out);
            }
            Alg1State::ShrinkRead {
                targets,
                pos,
                unlocking,
            } => {
                encode::put_u8(3, out);
                encode::put_u64(targets, out);
                encode::put_u8(pos as u8, out);
                encode::put_u8(u8::from(unlocking), out);
            }
            Alg1State::ShrinkWrite {
                targets,
                pos,
                unlocking,
            } => {
                encode::put_u8(4, out);
                encode::put_u64(targets, out);
                encode::put_u8(pos as u8, out);
                encode::put_u8(u8::from(unlocking), out);
            }
        }
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some(match encode::take_u8(bytes)? {
            0 => Alg1State::Idle,
            1 => Alg1State::Snap,
            2 => Alg1State::WriteFree {
                x: encode::take_u8(bytes)? as usize,
            },
            tag @ (3 | 4) => {
                let targets = encode::take_u64(bytes)?;
                let pos = encode::take_u8(bytes)? as usize;
                let unlocking = match encode::take_u8(bytes)? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                if tag == 3 {
                    Alg1State::ShrinkRead {
                        targets,
                        pos,
                        unlocking,
                    }
                } else {
                    Alg1State::ShrinkWrite {
                        targets,
                        pos,
                        unlocking,
                    }
                }
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;
    use amx_registers::Adversary;
    use amx_sim::mem::{MemoryModel, SimMemory};

    fn solo_setup(m: usize) -> (Alg1Automaton, Alg1State, SimMemory) {
        let id = PidPool::sequential().mint();
        let spec = MutexSpec::rw_unchecked(1, m);
        let a = Alg1Automaton::new(spec, id);
        let st = a.init_state();
        let mem = SimMemory::new(MemoryModel::Rw, m, &Adversary::Identity, 1).unwrap();
        (a, st, mem)
    }

    /// Drives a solo automaton until it acquires; returns steps taken.
    fn drive_to_acquire(
        a: &Alg1Automaton,
        st: &mut Alg1State,
        mem: &mut SimMemory,
        i: usize,
        budget: usize,
    ) -> usize {
        for step in 1..=budget {
            if a.step(st, &mut mem.view(i)) == Outcome::Acquired {
                return step;
            }
        }
        panic!("did not acquire within {budget} steps");
    }

    #[test]
    fn solo_process_acquires_after_filling_memory() {
        let (a, mut st, mut mem) = solo_setup(3);
        a.start_lock(&mut st);
        // Pattern: snap, write, snap, write, snap, write, snap(acquire) = 7.
        let steps = drive_to_acquire(&a, &mut st, &mut mem, 0, 20);
        assert_eq!(steps, 2 * 3 + 1);
        assert!(mem.slots().iter().all(|s| s.is_owned_by(a.id())));
    }

    #[test]
    fn solo_unlock_erases_everything() {
        let (a, mut st, mut mem) = solo_setup(3);
        a.start_lock(&mut st);
        drive_to_acquire(&a, &mut st, &mut mem, 0, 20);
        a.start_unlock(&mut st);
        let mut released = false;
        for _ in 0..10 {
            if a.step(&mut st, &mut mem.view(0)) == Outcome::Released {
                released = true;
                break;
            }
        }
        assert!(released, "unlock is wait-free and must finish");
        assert!(mem.slots().iter().all(|s| s.is_bottom()));
        assert_eq!(st, Alg1State::Idle);
    }

    #[test]
    fn unlock_takes_exactly_read_write_per_register() {
        // Claim 2: shrink terminates in ≤ m (read + write) steps.
        let (a, mut st, mut mem) = solo_setup(5);
        a.start_lock(&mut st);
        drive_to_acquire(&a, &mut st, &mut mem, 0, 30);
        a.start_unlock(&mut st);
        let mut steps = 0;
        loop {
            steps += 1;
            if a.step(&mut st, &mut mem.view(0)) == Outcome::Released {
                break;
            }
        }
        assert_eq!(steps, 2 * 5, "read+write per owned register");
    }

    #[test]
    fn waiting_process_spins_without_writing() {
        // A process that owns nothing and sees a non-empty view must keep
        // snapshotting (line 4 inner loop) without writing.
        let mut pool = PidPool::sequential();
        let (winner, waiter) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rw_unchecked(2, 3);
        let wa = Alg1Automaton::new(spec, winner);
        let wb = Alg1Automaton::new(spec, waiter);
        let mut sa = wa.init_state();
        let mut sb = wb.init_state();
        let mut mem = SimMemory::new(MemoryModel::Rw, 3, &Adversary::Identity, 2).unwrap();
        wa.start_lock(&mut sa);
        drive_to_acquire(&wa, &mut sa, &mut mem, 0, 20);
        wb.start_lock(&mut sb);
        let before = mem.slots().to_vec();
        for _ in 0..10 {
            assert_eq!(wb.step(&mut sb, &mut mem.view(1)), Outcome::Progress);
            assert_eq!(sb, Alg1State::Snap, "waiter must stay in the inner loop");
        }
        assert_eq!(mem.slots(), &before[..], "waiter must not write");
    }

    #[test]
    fn shrink_skips_registers_lost_to_overwrites() {
        // If a register the process owned in its view has since been
        // overwritten, shrink must read it, see a foreign value, and NOT
        // write ⊥ (that would erase someone else's claim).
        let mut pool = PidPool::sequential();
        let (me, other) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rw_unchecked(2, 3);
        let a = Alg1Automaton::new(spec, me);
        let mut st = Alg1State::ShrinkRead {
            targets: 0b011,
            pos: 0,
            unlocking: false,
        };
        let mut mem = SimMemory::new(MemoryModel::Rw, 3, &Adversary::Identity, 2).unwrap();
        mem.view(0).write(0, Slot::from(other)); // lost to `other`
        mem.view(0).write(1, Slot::from(me)); // still ours
                                              // Read index 0: foreign → advance without writing.
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Progress);
        assert_eq!(
            st,
            Alg1State::ShrinkRead {
                targets: 0b011,
                pos: 1,
                unlocking: false
            }
        );
        assert!(mem.slots()[0].is_owned_by(other), "foreign claim untouched");
        // Read index 1: ours → write ⊥, then shrink completes.
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Progress);
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Progress);
        assert!(mem.slots()[1].is_bottom());
        assert_eq!(st, Alg1State::Snap);
    }

    #[test]
    fn withdrawal_test_is_exact_rational_comparison() {
        // m = 5, cnt = 2: average is 2.5, so owning 2 withdraws and owning
        // 3 does not.  Integer division (2 < 5/2 == 2 → false) would get
        // the first case wrong.
        let mut pool = PidPool::sequential();
        let (me, other) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rw_unchecked(2, 5);
        let a = Alg1Automaton::new(spec, me);
        let mut mem = SimMemory::new(MemoryModel::Rw, 5, &Adversary::Identity, 2).unwrap();
        // Full view: me on {0,1}, other on {2,3,4}.
        for (x, owner) in [(0, me), (1, me), (2, other), (3, other), (4, other)] {
            mem.view(0).write(x, Slot::from(owner));
        }
        let mut st = Alg1State::Snap;
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Progress);
        assert!(
            matches!(
                st,
                Alg1State::ShrinkRead {
                    targets: 0b00011,
                    unlocking: false,
                    ..
                }
            ),
            "owning 2 < 5/2 must trigger shrink, got {st:?}"
        );
        // Majority owner stays in the competition.
        let b = Alg1Automaton::new(spec, other);
        let mut st = Alg1State::Snap;
        assert_eq!(b.step(&mut st, &mut mem.view(1)), Outcome::Progress);
        assert_eq!(st, Alg1State::Snap, "owning 3 ≥ 5/2 keeps competing");
    }

    #[test]
    fn policy_controls_write_target() {
        let id = PidPool::sequential().mint();
        let spec = MutexSpec::rw_unchecked(1, 4);
        for (policy, expect) in [
            (FreeSlotPolicy::FirstFree, 0usize),
            (FreeSlotPolicy::LastFree, 3),
            (FreeSlotPolicy::RotatingFrom(2), 2),
        ] {
            let a = Alg1Automaton::new(spec, id).with_policy(policy);
            let mut st = a.init_state();
            let mut mem = SimMemory::new(MemoryModel::Rw, 4, &Adversary::Identity, 1).unwrap();
            a.start_lock(&mut st);
            let _ = a.step(&mut st, &mut mem.view(0)); // snapshot
            assert_eq!(st, Alg1State::WriteFree { x: expect }, "policy {policy:?}");
        }
    }

    #[test]
    fn acquired_exactly_at_all_own_snapshot() {
        let (a, mut st, mut mem) = solo_setup(3);
        // Pre-fill the memory as if the process had won everything.
        for x in 0..3 {
            mem.view(0).write(x, Slot::from(a.id()));
        }
        a.start_lock(&mut st);
        assert_eq!(a.step(&mut st, &mut mem.view(0)), Outcome::Acquired);
        assert_eq!(st, Alg1State::Idle);
    }

    #[test]
    fn invalid_even_split_nobody_withdraws() {
        // The tie the coprimality condition exists to forbid: m = 2,
        // cnt = 2, both own exactly the average — neither may shrink,
        // so both stay on Snap forever (the livelock Theorem 5 predicts).
        let mut pool = PidPool::sequential();
        let (p, q) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rw_unchecked(2, 2);
        let (a, b) = (Alg1Automaton::new(spec, p), Alg1Automaton::new(spec, q));
        let mut mem = SimMemory::new(MemoryModel::Rw, 2, &Adversary::Identity, 2).unwrap();
        mem.view(0).write(0, Slot::from(p));
        mem.view(0).write(1, Slot::from(q));
        let (mut sa, mut sb) = (Alg1State::Snap, Alg1State::Snap);
        for _ in 0..5 {
            assert_eq!(a.step(&mut sa, &mut mem.view(0)), Outcome::Progress);
            assert_eq!(b.step(&mut sb, &mut mem.view(1)), Outcome::Progress);
            assert_eq!(sa, Alg1State::Snap);
            assert_eq!(sb, Alg1State::Snap);
        }
        assert!(mem.slots()[0].is_owned_by(p), "split is frozen");
        assert!(mem.slots()[1].is_owned_by(q));
    }

    #[test]
    fn unlock_shrink_skips_registers_overwritten_during_cs() {
        // While the holder sits in its CS another process may overwrite
        // one of its registers from a stale view; the unlock shrink must
        // read-check and leave the foreign claim alone.
        let mut pool = PidPool::sequential();
        let (holder, intruder) = (pool.mint(), pool.mint());
        let spec = MutexSpec::rw_unchecked(2, 3);
        let a = Alg1Automaton::new(spec, holder);
        let mut mem = SimMemory::new(MemoryModel::Rw, 3, &Adversary::Identity, 2).unwrap();
        for x in 0..3 {
            mem.view(0).write(x, Slot::from(holder));
        }
        // Intruder overwrites register 1 (stale free-slot write).
        mem.view(1).write(1, Slot::from(intruder));
        let mut st = Alg1State::Idle;
        a.start_unlock(&mut st);
        let mut released = false;
        for _ in 0..10 {
            if a.step(&mut st, &mut mem.view(0)) == Outcome::Released {
                released = true;
                break;
            }
        }
        assert!(released);
        assert!(mem.slots()[0].is_bottom());
        assert!(
            mem.slots()[1].is_owned_by(intruder),
            "foreign claim preserved"
        );
        assert!(mem.slots()[2].is_bottom());
    }

    #[test]
    #[should_panic(expected = "step without pending invocation")]
    fn stepping_idle_panics() {
        let (a, mut st, mut mem) = solo_setup(3);
        let _ = a.step(&mut st, &mut mem.view(0));
    }

    #[test]
    #[should_panic(expected = "RW registers")]
    fn rmw_spec_is_rejected() {
        let id = PidPool::sequential().mint();
        let _ = Alg1Automaton::new(MutexSpec::rmw_unchecked(2, 3), id);
    }
}
