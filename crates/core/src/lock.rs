//! The unified locking API every lock family in this workspace sits
//! behind.
//!
//! An [`AmxLock`] is a *shared lock object*: it owns the register array
//! (behind an `Arc`, so the object is cheaply clonable) and mints one
//! [`Participant`] per process.  Participants are `Send` handles — move
//! each into the thread that plays its process.  All acquisition styles
//! live on the handle and every one of them returns the same RAII
//! [`Guard`]:
//!
//! * [`Participant::lock`] — spin until acquired;
//! * [`Participant::try_lock`] — one bounded attempt, withdrawing
//!   cleanly on failure;
//! * [`Participant::try_lock_for`] — keep trying until a wall-clock
//!   deadline, withdrawing on timeout;
//! * [`Participant::try_lock_steps`] — the low-level bounded probe that
//!   leaves the competition *pending* on failure (resume with `lock`,
//!   leave with [`Participant::withdraw`]).
//!
//! Dropping the guard is the one and only unlock path; every unlock
//! protocol in the workspace is wait-free, so the destructor cannot
//! block indefinitely — which is also why it is safe to run during
//! unwinding.  If a guard is dropped *because its holder panicked*, the
//! lock is marked **poisoned**: the critical section may have been left
//! half-done.  Poisoning here is advisory (the next `lock()` still
//! succeeds — deadlock-freedom is the whole point of the paper) and is
//! observable through [`Guard::poisoned`], [`Participant::is_poisoned`]
//! and [`AmxLock::is_poisoned`]; clear it with [`AmxLock::clear_poison`].
//!
//! # Crash semantics
//!
//! A participant dropped **outside** its critical section — even
//! mid-doorway, with claims in shared memory — withdraws automatically:
//! `Drop` runs [`abandon`](RawEndpoint::abandon) on any pending
//! invocation, so the handle leaves memory clean and never poisons the
//! lock (poisoning means a *critical section* was interrupted; a doorway
//! has no application state to corrupt).  To simulate a real process
//! crash instead — stale claims left behind, exactly the model checker's
//! `CrashMode::StaleClaims` — call [`Participant::hard_crash`], which
//! skips the cleanup.  How waiters burn the time between protocol steps
//! is the pluggable [`Backoff`] ladder
//! ([`Participant::with_backoff`]).
//!
//! Lock families implement the trait by wrapping a [`RawEndpoint`] — the
//! minimal per-process driver SPI — so harnesses like the contention rig
//! drive Algorithm 1, Algorithm 2, TAS, Burns–Lynch and Peterson through
//! one `Box<dyn AmxLock>` with zero per-family code.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amx_ids::Pid;
use amx_registers::adversary::AdversaryError;
use amx_registers::{Adversary, OpCounters};

use crate::policy::{Backoff, FreeSlotPolicy};
use crate::spec::MutexSpec;

/// Steps granted to a single [`Participant::try_lock`] attempt — ample
/// for any *uncontended* acquisition in the workspace (the costliest,
/// Algorithm 1, needs `Θ(m²)` reads with `m ≤ 64`).
const TRY_LOCK_STEPS: u64 = 65_536;

/// Steps run between deadline checks in [`Participant::try_lock_for`].
const TRY_SLICE_STEPS: u64 = 128;

/// A shared lock object: the register array plus the recipe for minting
/// per-process [`Participant`] handles.
///
/// The trait is object safe — the contention rig holds a
/// `Box<dyn AmxLock>` per family and never branches on the family.
pub trait AmxLock: Send + Sync + fmt::Debug {
    /// Short machine-readable family name (`"alg1"`, `"alg2"`, `"tas"`,
    /// `"burns-lynch"`, `"peterson"`), used as the key in bench reports.
    fn family(&self) -> &'static str;

    /// The validated `(n, m, model)` configuration of this lock.
    fn spec(&self) -> MutexSpec;

    /// Mints one `Send` [`Participant`] handle per process, with fresh
    /// identities and — for the anonymous families — register-name
    /// permutations drawn from `adversary`.  Non-anonymous baselines
    /// document that they ignore the adversary.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    fn participants(&self, adversary: &Adversary) -> Result<Vec<Participant>, AdversaryError>;

    /// Whether some holder panicked inside a critical section since the
    /// last [`clear_poison`](Self::clear_poison).
    fn is_poisoned(&self) -> bool;

    /// Clears the poison flag after the caller has repaired (or decided
    /// to ignore) whatever the panicking holder left behind.
    fn clear_poison(&self);
}

/// Uniform constructor surface shared by every [`AmxLock`] implementor:
/// one generic `with_participants(spec, &adversary)` entry point
/// replacing the per-family `create` associated functions.
pub trait BuildLock: AmxLock + Sized {
    /// Builds the shared lock object for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not fit the family (wrong memory model or a
    /// register count the family cannot use).
    fn from_spec(spec: MutexSpec) -> Self;

    /// One-call setup: build the lock object for `spec` and mint one
    /// participant per process.  The lock object itself is dropped; the
    /// participants keep the shared registers alive through their `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    fn with_participants(
        spec: MutexSpec,
        adversary: &Adversary,
    ) -> Result<Vec<Participant>, AdversaryError> {
        Self::from_spec(spec).participants(adversary)
    }
}

/// The per-process driver SPI a lock family implements so [`Participant`]
/// can wrap it.
///
/// Implementations drive a step machine (an [`amx_sim::automaton::Automaton`])
/// against real atomic registers; `Participant` layers entry accounting,
/// poisoning and the RAII guard on top.  One step ≙ one shared-memory
/// operation, so the step bounds of `try_acquire` are operation bounds.
pub trait RawEndpoint: Send + fmt::Debug {
    /// The (symmetric) identity this endpoint writes into registers.
    fn pid(&self) -> Pid;

    /// Cumulative shared-memory operation counters for this endpoint.
    fn counters(&self) -> &OpCounters;

    /// Runs the entry protocol to completion (spinning as needed).
    /// Resumes a competition left pending by a failed `try_acquire`.
    fn acquire(&mut self);

    /// Runs at most `max_steps` entry-protocol steps; returns whether
    /// the lock was acquired.  On `false` the process is **still
    /// competing** (it may own registers) — callers either resume with
    /// `acquire` or leave with `abandon`.
    fn try_acquire(&mut self, max_steps: u64) -> bool;

    /// Runs the (wait-free) exit protocol to completion.
    fn release(&mut self);

    /// Cleanly leaves a pending competition, erasing every claim this
    /// process still holds in shared memory.
    fn abandon(&mut self);

    /// Installs a free-register selection policy, where the family has
    /// one (Algorithm 1's line-6 choice).  Default: no-op.
    fn set_policy(&mut self, policy: FreeSlotPolicy) {
        let _ = policy;
    }
}

/// One process's `Send` endpoint of an [`AmxLock`].  Move it into the
/// thread that plays this process; every acquisition method returns the
/// RAII [`Guard`] whose drop is the single unlock path.
#[derive(Debug)]
pub struct Participant {
    raw: Box<dyn RawEndpoint>,
    family: &'static str,
    spec: MutexSpec,
    poison: Arc<AtomicBool>,
    entries: u64,
    backoff: Backoff,
    /// Whether an entry invocation is mid-doorway (this process may own
    /// registers but holds no guard).  Drives the `Drop` auto-withdraw.
    pending: bool,
    /// Set by [`hard_crash`](Participant::hard_crash): `Drop` must leave
    /// shared memory exactly as the crash found it.
    crashed: bool,
}

impl Participant {
    /// Wraps a family's [`RawEndpoint`] driver.  `poison` is the flag
    /// shared with the minting lock object (and all sibling
    /// participants).
    ///
    /// This is the SPI constructor for lock families; applications get
    /// participants from [`AmxLock::participants`].
    #[must_use]
    pub fn from_raw(
        family: &'static str,
        spec: MutexSpec,
        poison: Arc<AtomicBool>,
        raw: Box<dyn RawEndpoint>,
    ) -> Self {
        Participant {
            raw,
            family,
            spec,
            poison,
            entries: 0,
            backoff: Backoff::default(),
            pending: false,
            crashed: false,
        }
    }

    /// This participant's (symmetric) identity.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.raw.pid()
    }

    /// The family name of the minting lock (see [`AmxLock::family`]).
    #[must_use]
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// The configuration of the minting lock.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.spec
    }

    /// Cumulative shared-memory operation counters for this participant.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        self.raw.counters()
    }

    /// Critical sections entered so far.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Whether the shared lock is currently poisoned.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire)
    }

    /// Sets the free-register selection policy, where the family has one
    /// (Algorithm 1's line 6); a no-op for every other family.
    #[must_use]
    pub fn with_policy(mut self, policy: FreeSlotPolicy) -> Self {
        self.raw.set_policy(policy);
        self
    }

    /// Sets the contention [`Backoff`] ladder this handle climbs between
    /// bounded protocol slices (default: [`Backoff::SpinYield`]).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// The contention backoff policy in effect on this handle.
    #[must_use]
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }

    /// Whether an entry invocation is pending: a bounded probe ran out of
    /// steps and this process is still competing (it may own registers).
    /// `Drop` withdraws a pending invocation automatically.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending
    }

    /// Acquires the lock, running the entry protocol in bounded slices
    /// and climbing the [`Backoff`] ladder between them until this
    /// process wins; returns the critical-section guard.
    ///
    /// Resumes a competition left pending by an exhausted
    /// [`try_lock_steps`](Self::try_lock_steps).
    pub fn lock(&mut self) -> Guard<'_> {
        let mut attempt = 0u32;
        while !self.raw.try_acquire(TRY_SLICE_STEPS) {
            self.pending = true;
            self.backoff.wait(attempt);
            attempt = attempt.saturating_add(1);
        }
        self.enter()
    }

    /// One bounded acquisition attempt.  On failure the process
    /// *withdraws* (erases its claims) before returning `None`, so the
    /// call leaves no trace in shared memory.
    pub fn try_lock(&mut self) -> Option<Guard<'_>> {
        if self.raw.try_acquire(TRY_LOCK_STEPS) {
            Some(self.enter())
        } else {
            self.raw.abandon();
            self.pending = false;
            None
        }
    }

    /// Keeps attempting until `timeout` has elapsed, then withdraws and
    /// returns `None`.  At least one bounded attempt is always made; the
    /// waits between slices follow this handle's [`Backoff`] policy.
    pub fn try_lock_for(&mut self, timeout: Duration) -> Option<Guard<'_>> {
        let deadline = Instant::now() + timeout;
        let mut attempt = 0u32;
        loop {
            if self.raw.try_acquire(TRY_SLICE_STEPS) {
                return Some(self.enter());
            }
            self.pending = true;
            if Instant::now() >= deadline {
                self.raw.abandon();
                self.pending = false;
                return None;
            }
            self.backoff.wait(attempt);
            attempt = attempt.saturating_add(1);
        }
    }

    /// Low-level bounded probe: runs at most `max_steps` protocol steps
    /// (≙ shared-memory operations).  On `None` the process is **still
    /// competing** — it may own registers; call [`lock`](Self::lock) to
    /// finish or [`withdraw`](Self::withdraw) to leave cleanly (dropping
    /// the handle withdraws too).
    pub fn try_lock_steps(&mut self, max_steps: u64) -> Option<Guard<'_>> {
        if self.raw.try_acquire(max_steps) {
            Some(self.enter())
        } else {
            self.pending = true;
            None
        }
    }

    /// Abandons a pending competition, erasing this process's claims
    /// from shared memory.
    pub fn withdraw(&mut self) {
        self.raw.abandon();
        self.pending = false;
    }

    /// Simulates a hard process crash: consumes the handle **without**
    /// withdrawing, leaving every claim this process held in shared
    /// memory exactly as the crash found it — the threaded twin of the
    /// model checker's `CrashMode::StaleClaims`.
    ///
    /// The lock is *not* poisoned (the crash happened outside any
    /// critical section — a guard borrows the handle, so one cannot
    /// exist here).  Whether survivors keep making progress past the
    /// stale claims is a property of the lock family; the chaos tests
    /// pin down which families do.
    pub fn hard_crash(mut self) {
        self.crashed = true;
    }

    fn enter(&mut self) -> Guard<'_> {
        self.pending = false;
        self.entries += 1;
        let poisoned = self.poison.load(Ordering::Acquire);
        Guard {
            participant: self,
            poisoned,
        }
    }
}

impl Drop for Participant {
    /// A handle dropped mid-doorway withdraws its pending invocation so
    /// shared memory ends clean — unless [`hard_crash`]
    /// (Participant::hard_crash) asked for the claims to stay.  Never
    /// poisons: a doorway holds no application state.
    fn drop(&mut self) {
        if self.pending && !self.crashed {
            self.raw.abandon();
            self.pending = false;
        }
    }
}

/// RAII critical-section guard: dropping it runs the family's wait-free
/// unlock protocol.  This is the **only** unlock path.
///
/// If the drop happens during a panic unwind, the shared lock is marked
/// poisoned *before* the registers are released, so the next acquirer's
/// guard reports [`poisoned`](Guard::poisoned).
#[derive(Debug)]
pub struct Guard<'a> {
    participant: &'a mut Participant,
    poisoned: bool,
}

impl Guard<'_> {
    /// The identity holding the critical section.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.participant.pid()
    }

    /// The configuration of the lock being held.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.participant.spec
    }

    /// Whether the lock was poisoned at the moment this guard acquired
    /// it (i.e. some earlier holder panicked mid-critical-section).
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.participant.poison.store(true, Ordering::Release);
        }
        self.participant.raw.release();
    }
}
