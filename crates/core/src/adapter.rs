//! [`MemoryOps`] adapters over the real atomic register arrays.
//!
//! The automata in this crate are written once against the abstract
//! [`MemoryOps`] interface; these adapters let the *same* transition logic
//! run over the lock-free arrays of `amx-registers`, so the threaded locks
//! and the model-checked automata cannot diverge.
//!
//! Model enforcement mirrors [`amx_sim::mem::SimMemory`]: invoking
//! `compare_and_swap` through an RW adapter (or `snapshot` through an RMW
//! adapter) panics, because the corresponding operation does not exist in
//! that register family.

use amx_ids::Slot;
use amx_registers::{RmwHandle, RwHandle};
use amx_sim::mem::MemoryOps;

/// [`MemoryOps`] over an anonymous **read/write** register array.
///
/// Snapshots delegate to the handle's double-collect implementation.
#[derive(Debug)]
pub struct RwMemoryOps {
    handle: RwHandle,
}

impl RwMemoryOps {
    /// Wraps a per-process RW handle.
    #[must_use]
    pub fn new(handle: RwHandle) -> Self {
        RwMemoryOps { handle }
    }

    /// The wrapped handle.
    #[must_use]
    pub fn handle(&self) -> &RwHandle {
        &self.handle
    }

    /// Unwraps the adapter.
    #[must_use]
    pub fn into_inner(self) -> RwHandle {
        self.handle
    }
}

impl MemoryOps for RwMemoryOps {
    fn m(&self) -> usize {
        self.handle.len()
    }

    fn read(&mut self, x: usize) -> Slot {
        self.handle.read(x)
    }

    fn write(&mut self, x: usize, v: Slot) {
        self.handle.write(x, v);
    }

    fn compare_and_swap(&mut self, _x: usize, _old: Slot, _new: Slot) -> bool {
        panic!("compare&swap invoked on a read/write-only anonymous memory")
    }

    fn snapshot(&mut self) -> Vec<Slot> {
        self.handle.snapshot()
    }
}

/// [`MemoryOps`] over an anonymous **read/modify/write** register array.
#[derive(Debug)]
pub struct RmwMemoryOps {
    handle: RmwHandle,
}

impl RmwMemoryOps {
    /// Wraps a per-process RMW handle.
    #[must_use]
    pub fn new(handle: RmwHandle) -> Self {
        RmwMemoryOps { handle }
    }

    /// The wrapped handle.
    #[must_use]
    pub fn handle(&self) -> &RmwHandle {
        &self.handle
    }

    /// Unwraps the adapter.
    #[must_use]
    pub fn into_inner(self) -> RmwHandle {
        self.handle
    }
}

impl MemoryOps for RmwMemoryOps {
    fn m(&self) -> usize {
        self.handle.len()
    }

    fn read(&mut self, x: usize) -> Slot {
        self.handle.read(x)
    }

    fn write(&mut self, x: usize, v: Slot) {
        self.handle.write(x, v);
    }

    fn compare_and_swap(&mut self, x: usize, old: Slot, new: Slot) -> bool {
        self.handle.compare_and_swap(x, old, new)
    }

    fn snapshot(&mut self) -> Vec<Slot> {
        panic!("Algorithm 2 takes no snapshots; RMW adapter does not provide them")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amx_ids::PidPool;
    use amx_registers::{AnonymousRmwMemory, AnonymousRwMemory, Permutation};

    #[test]
    fn rw_adapter_round_trips() {
        let mem = AnonymousRwMemory::new(4);
        let id = PidPool::sequential().mint();
        let mut ops = RwMemoryOps::new(mem.handle(id, Permutation::rotation(4, 1)));
        assert_eq!(ops.m(), 4);
        ops.write(0, Slot::from(id));
        assert!(ops.read(0).is_owned_by(id));
        assert!(mem.observe(1).is_owned_by(id));
        let snap = ops.snapshot();
        assert!(snap[0].is_owned_by(id));
        assert_eq!(snap.iter().filter(|s| !s.is_bottom()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "read/write-only")]
    fn rw_adapter_rejects_cas() {
        let mem = AnonymousRwMemory::new(2);
        let id = PidPool::sequential().mint();
        let mut ops = RwMemoryOps::new(mem.handle(id, Permutation::identity(2)));
        let _ = ops.compare_and_swap(0, Slot::BOTTOM, Slot::from(id));
    }

    #[test]
    fn rmw_adapter_round_trips() {
        let mem = AnonymousRmwMemory::new(3);
        let id = PidPool::sequential().mint();
        let mut ops = RmwMemoryOps::new(mem.handle(id, Permutation::identity(3)));
        assert!(ops.compare_and_swap(2, Slot::BOTTOM, Slot::from(id)));
        assert!(ops.read(2).is_owned_by(id));
        ops.write(2, Slot::BOTTOM);
        assert!(ops.read(2).is_bottom());
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn rmw_adapter_rejects_snapshot() {
        let mem = AnonymousRmwMemory::new(2);
        let id = PidPool::sequential().mint();
        let mut ops = RmwMemoryOps::new(mem.handle(id, Permutation::identity(2)));
        let _ = ops.snapshot();
    }

    #[test]
    fn into_inner_returns_handle() {
        let mem = AnonymousRwMemory::new(2);
        let id = PidPool::sequential().mint();
        let ops = RwMemoryOps::new(mem.handle(id, Permutation::identity(2)));
        assert_eq!(ops.handle().id(), id);
        let h = ops.into_inner();
        assert_eq!(h.id(), id);
    }
}
