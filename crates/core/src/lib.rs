//! Optimal memory-anonymous symmetric deadlock-free mutual exclusion.
//!
//! This crate implements the two algorithms of *"Optimal Memory-Anonymous
//! Symmetric Deadlock-Free Mutual Exclusion"* (Aghazadeh, Imbs, Raynal,
//! Taubenfeld, Woelfel — PODC 2019):
//!
//! * **Algorithm 1** ([`alg1`]) — deadlock-free mutual exclusion for `n`
//!   processes over `m` anonymous **read/write** registers, for every
//!   `m ≥ n` with `m ∈ M(n) = { m : ∀ ℓ, 1 < ℓ ≤ n : gcd(ℓ, m) = 1 }`.
//!   A process competes by writing its identity into free registers until
//!   a snapshot shows it owning **all** of them; on a full view it
//!   withdraws (erases itself) whenever it owns fewer than the average
//!   `m / #competitors` — and because `m` is coprime with every possible
//!   competitor count, not everyone can be average, so someone always
//!   backs off.
//! * **Algorithm 2** ([`alg2`]) — the same guarantee over `m` anonymous
//!   **read/modify/write** registers for every `m ∈ M(n)` (including the
//!   degenerate `m = 1`).  A process claims free registers with
//!   `compare&swap` and enters once it owns a **majority**; a process
//!   seeing someone else more present resigns and waits for the memory to
//!   empty.
//!
//! Both register-count conditions are *tight* (Taubenfeld PODC 2017 for
//! RW; Theorem 5 of the paper for RMW — executable in `amx-lowerbound`).
//!
//! Each algorithm exists in two interchangeable forms built from a single
//! implementation of its transition logic:
//!
//! * an **automaton** ([`alg1::Alg1Automaton`], [`alg2::Alg2Automaton`])
//!   pluggable into the deterministic drivers of `amx-sim` (randomized
//!   runs, exhaustive model checking, lock-step adversaries), and
//! * a **threaded lock** ([`threaded::RwAnonLock`],
//!   [`threaded::RmwAnonLock`]) that drives the same automaton over the
//!   real atomic arrays of `amx-registers`, behind the unified
//!   [`lock::AmxLock`] API (`Send` [`lock::Participant`] handles, RAII
//!   [`lock::Guard`]s, poisoning on critical-section panic).
//!
//! # Quickstart
//!
//! ```
//! use amx_core::lock::BuildLock;
//! use amx_core::spec::MutexSpec;
//! use amx_core::threaded::RwAnonLock;
//! use amx_registers::Adversary;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // 3 processes need m = 5 anonymous RW registers (smallest valid size).
//! let spec = MutexSpec::smallest_rw(3)?;
//! let participants = RwAnonLock::with_participants(spec, &Adversary::Random(42))?;
//!
//! let counter = AtomicU64::new(0);
//! std::thread::scope(|s| {
//!     for mut p in participants {
//!         let counter = &counter;
//!         s.spawn(move || {
//!             for _ in 0..100 {
//!                 let _guard = p.lock();
//!                 // …critical section…
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             }
//!         });
//!     }
//! });
//! assert_eq!(counter.load(Ordering::Relaxed), 300);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod alg1;
pub mod alg2;
mod bits;
pub mod lock;
pub mod metrics;
pub mod policy;
pub mod spec;
pub mod threaded;

pub use alg1::Alg1Automaton;
pub use alg2::Alg2Automaton;
pub use lock::{AmxLock, BuildLock, Guard, Participant, RawEndpoint};
pub use policy::{Backoff, FreeSlotPolicy};
pub use spec::{MutexSpec, SpecError};
pub use threaded::{RmwAnonLock, RwAnonLock};
