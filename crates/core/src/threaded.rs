//! Threaded lock runtime for the paper's algorithms, behind the unified
//! [`AmxLock`] API.
//!
//! [`RwAnonLock`] (Algorithm 1) and [`RmwAnonLock`] (Algorithm 2) drive
//! the *same* automata that the simulator model-checks, but over the
//! lock-free arrays of `amx-registers`, one OS thread per process.  Both
//! implement [`AmxLock`] + [`BuildLock`]: the lock object owns the
//! anonymous register array (cheaply clonable, `Arc` semantics) and
//! mints one `Send` [`Participant`] handle per process.  `lock()` on a
//! participant spins the automaton until it acquires and returns an
//! RAII [`Guard`] whose drop runs the wait-free unlock protocol — and
//! marks the lock poisoned if the holder is panicking.
//!
//! # Example
//!
//! ```
//! use amx_core::lock::BuildLock;
//! use amx_core::spec::MutexSpec;
//! use amx_core::threaded::RmwAnonLock;
//! use amx_registers::Adversary;
//!
//! let spec = MutexSpec::rmw(2, 3)?;
//! let mut participants = RmwAnonLock::with_participants(spec, &Adversary::Random(1))?;
//! let mut p = participants.remove(0);
//! {
//!     let guard = p.lock();
//!     assert_eq!(guard.spec(), spec);
//!     // …critical section…
//! } // guard drop runs the wait-free unlock
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The full acquisition menu (`try_lock`, `try_lock_for`,
//! `try_lock_steps`, `withdraw`) lives on [`Participant`]; see the
//! [`lock`](crate::lock) module docs.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use amx_ids::{Pid, PidPool, Slot};
use amx_registers::adversary::AdversaryError;
use amx_registers::{Adversary, AnonymousRmwMemory, AnonymousRwMemory, OpCounters};
use amx_sim::automaton::{Automaton, Outcome};
use amx_sim::mem::MemoryOps;

use crate::adapter::{RmwMemoryOps, RwMemoryOps};
use crate::alg1::{Alg1Automaton, Alg1State};
use crate::alg2::{Alg2Automaton, Alg2State};
use crate::lock::{AmxLock, BuildLock, Participant, RawEndpoint};
use crate::policy::FreeSlotPolicy;
use crate::spec::{Model, MutexSpec};

/// How often a spinning participant yields to the OS scheduler.
const YIELD_EVERY: u64 = 64;

pub(crate) fn spin_pause(step: u64) {
    if step.is_multiple_of(YIELD_EVERY) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// The Algorithm 1 lock object: an anonymous RW register array shared by
/// `n` participants.
#[derive(Debug, Clone)]
pub struct RwAnonLock {
    mem: AnonymousRwMemory,
    spec: MutexSpec,
    poison: Arc<AtomicBool>,
}

impl RwAnonLock {
    /// Creates the lock object for a validated RW spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RW-model spec.
    #[must_use]
    pub fn new(spec: MutexSpec) -> Self {
        assert_eq!(spec.model(), Model::Rw, "RwAnonLock needs an RW spec");
        RwAnonLock {
            mem: AnonymousRwMemory::new(spec.m()),
            spec,
            poison: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The validated configuration.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.spec
    }

    /// Omniscient view of the register array (harness/diagnostics).
    #[must_use]
    pub fn memory(&self) -> &AnonymousRwMemory {
        &self.mem
    }

    /// Builds one participant per process with fresh identities and
    /// `adversary`-chosen permutations.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn participants(&self, adversary: &Adversary) -> Result<Vec<Participant>, AdversaryError> {
        let perms = adversary.permutations(self.spec.n(), self.spec.m())?;
        let mut pool = PidPool::sequential();
        Ok(perms
            .into_iter()
            .map(|perm| {
                let id = pool.mint();
                let counters = OpCounters::new();
                let handle = self.mem.handle_with_counters(id, perm, counters.clone());
                Participant::from_raw(
                    AmxLock::family(self),
                    self.spec,
                    Arc::clone(&self.poison),
                    Box::new(RwEndpoint {
                        automaton: Alg1Automaton::new(self.spec, id),
                        state: Alg1State::Idle,
                        ops: RwMemoryOps::new(handle),
                        counters,
                    }),
                )
            })
            .collect())
    }
}

impl AmxLock for RwAnonLock {
    fn family(&self) -> &'static str {
        "alg1"
    }

    fn spec(&self) -> MutexSpec {
        self.spec
    }

    fn participants(&self, adversary: &Adversary) -> Result<Vec<Participant>, AdversaryError> {
        RwAnonLock::participants(self, adversary)
    }

    fn is_poisoned(&self) -> bool {
        self.poison.load(std::sync::atomic::Ordering::Acquire)
    }

    fn clear_poison(&self) {
        self.poison
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

impl BuildLock for RwAnonLock {
    fn from_spec(spec: MutexSpec) -> Self {
        RwAnonLock::new(spec)
    }
}

/// Algorithm 1 per-process driver behind [`RawEndpoint`].
#[derive(Debug)]
struct RwEndpoint {
    automaton: Alg1Automaton,
    state: Alg1State,
    ops: RwMemoryOps,
    counters: OpCounters,
}

impl RawEndpoint for RwEndpoint {
    fn pid(&self) -> Pid {
        self.automaton.id()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn acquire(&mut self) {
        if self.state == Alg1State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Acquired {
            step += 1;
            spin_pause(step);
        }
    }

    fn try_acquire(&mut self, max_steps: u64) -> bool {
        if self.state == Alg1State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        for _ in 0..max_steps {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                return true;
            }
        }
        false
    }

    fn release(&mut self) {
        self.automaton.start_unlock(&mut self.state);
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Released {
            step += 1;
            spin_pause(step);
        }
    }

    fn abandon(&mut self) {
        // One erase pass suffices: no other process ever writes this
        // identity, so every owned register stays owned until we clear it.
        let snap = self.ops.snapshot();
        let id = self.automaton.id();
        for x in amx_ids::view::owned_indices(&snap, id) {
            if self.ops.read(x).is_owned_by(id) {
                self.ops.write(x, Slot::BOTTOM);
            }
        }
        self.state = Alg1State::Idle;
    }

    fn set_policy(&mut self, policy: FreeSlotPolicy) {
        self.automaton = self.automaton.clone().with_policy(policy);
    }
}

/// The Algorithm 2 lock object: an anonymous RMW register array shared by
/// `n` participants.
#[derive(Debug, Clone)]
pub struct RmwAnonLock {
    mem: AnonymousRmwMemory,
    spec: MutexSpec,
    poison: Arc<AtomicBool>,
}

impl RmwAnonLock {
    /// Creates the lock object for a validated RMW spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RMW-model spec.
    #[must_use]
    pub fn new(spec: MutexSpec) -> Self {
        assert_eq!(spec.model(), Model::Rmw, "RmwAnonLock needs an RMW spec");
        RmwAnonLock {
            mem: AnonymousRmwMemory::new(spec.m()),
            spec,
            poison: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The validated configuration.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.spec
    }

    /// Omniscient view of the register array (harness/diagnostics).
    #[must_use]
    pub fn memory(&self) -> &AnonymousRmwMemory {
        &self.mem
    }

    /// Builds one participant per process with fresh identities and
    /// `adversary`-chosen permutations.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn participants(&self, adversary: &Adversary) -> Result<Vec<Participant>, AdversaryError> {
        let perms = adversary.permutations(self.spec.n(), self.spec.m())?;
        let mut pool = PidPool::sequential();
        Ok(perms
            .into_iter()
            .map(|perm| {
                let id = pool.mint();
                let counters = OpCounters::new();
                let handle = self.mem.handle_with_counters(id, perm, counters.clone());
                Participant::from_raw(
                    AmxLock::family(self),
                    self.spec,
                    Arc::clone(&self.poison),
                    Box::new(RmwEndpoint {
                        automaton: Alg2Automaton::new(self.spec, id),
                        state: Alg2State::Idle,
                        ops: RmwMemoryOps::new(handle),
                        counters,
                    }),
                )
            })
            .collect())
    }
}

impl AmxLock for RmwAnonLock {
    fn family(&self) -> &'static str {
        "alg2"
    }

    fn spec(&self) -> MutexSpec {
        self.spec
    }

    fn participants(&self, adversary: &Adversary) -> Result<Vec<Participant>, AdversaryError> {
        RmwAnonLock::participants(self, adversary)
    }

    fn is_poisoned(&self) -> bool {
        self.poison.load(std::sync::atomic::Ordering::Acquire)
    }

    fn clear_poison(&self) {
        self.poison
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

impl BuildLock for RmwAnonLock {
    fn from_spec(spec: MutexSpec) -> Self {
        RmwAnonLock::new(spec)
    }
}

/// Algorithm 2 per-process driver behind [`RawEndpoint`].
#[derive(Debug)]
struct RmwEndpoint {
    automaton: Alg2Automaton,
    state: Alg2State,
    ops: RmwMemoryOps,
    counters: OpCounters,
}

impl RawEndpoint for RmwEndpoint {
    fn pid(&self) -> Pid {
        self.automaton.id()
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn acquire(&mut self) {
        if self.state == Alg2State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Acquired {
            step += 1;
            spin_pause(step);
        }
    }

    fn try_acquire(&mut self, max_steps: u64) -> bool {
        if self.state == Alg2State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        for _ in 0..max_steps {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                return true;
            }
        }
        false
    }

    fn release(&mut self) {
        self.automaton.start_unlock(&mut self.state);
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Released {
            step += 1;
            spin_pause(step);
        }
    }

    fn abandon(&mut self) {
        let id = self.automaton.id();
        for x in 0..self.ops.m() {
            let _ = self.ops.compare_and_swap(x, Slot::from(id), Slot::BOTTOM);
        }
        self.state = Alg2State::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn rw_solo_lock_unlock() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let lock = RwAnonLock::new(spec);
        let mut parts = lock.participants(&Adversary::Identity).unwrap();
        {
            let expect_id = parts[0].pid();
            let guard = parts[0].lock();
            assert_eq!(guard.pid(), expect_id);
            assert_eq!(guard.spec(), spec);
            assert!(!guard.poisoned());
            assert!(lock.memory().observe_all().iter().all(|s| !s.is_bottom()));
        }
        assert!(lock.memory().observe_all().iter().all(|s| s.is_bottom()));
        assert_eq!(parts[0].entries(), 1);
    }

    #[test]
    fn rmw_solo_lock_unlock() {
        let spec = MutexSpec::rmw(2, 3).unwrap();
        let lock = RmwAnonLock::new(spec);
        let mut parts = lock.participants(&Adversary::Identity).unwrap();
        {
            let holder = parts[1].pid();
            let _guard = parts[1].lock();
            let owned = lock
                .memory()
                .observe_all()
                .iter()
                .filter(|s| s.is_owned_by(holder))
                .count();
            assert!(owned * 2 > 3, "majority held in CS");
        }
        assert!(lock.memory().observe_all().iter().all(|s| s.is_bottom()));
    }

    #[test]
    fn rw_two_threads_exclusion_and_counter() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let participants = RwAnonLock::with_participants(spec, &Adversary::Random(7)).unwrap();
        let counter = AtomicU64::new(0);
        let in_cs = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let (counter, in_cs) = (&counter, &in_cs);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = p.lock();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                        counter.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn rmw_three_threads_exclusion_and_counter() {
        let spec = MutexSpec::rmw(3, 5).unwrap();
        let participants = RmwAnonLock::with_participants(spec, &Adversary::Random(3)).unwrap();
        let counter = AtomicU64::new(0);
        let in_cs = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let (counter, in_cs) = (&counter, &in_cs);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = p.lock();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                        counter.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn rmw_single_register_two_threads() {
        // The degenerate m = 1 configuration: a pure CAS lock.
        let spec = MutexSpec::rmw(2, 1).unwrap();
        let participants = RmwAnonLock::with_participants(spec, &Adversary::Identity).unwrap();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..100 {
                        let _g = p.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn try_lock_steps_can_fail_then_withdraw() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let lock = RwAnonLock::new(spec);
        let parts = lock.participants(&Adversary::Identity).unwrap();
        let (mut a, mut b) = {
            let mut it = parts.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        let guard = a.lock();
        // b cannot acquire while a holds everything.
        assert!(b.try_lock_steps(100).is_none());
        b.withdraw();
        assert!(lock
            .memory()
            .observe_all()
            .iter()
            .all(|s| !s.is_owned_by(b.pid())));
        drop(guard);
        // Now b succeeds.
        let g = b.lock();
        drop(g);
        assert_eq!(b.entries(), 1);
    }

    #[test]
    fn try_lock_and_try_lock_for_withdraw_on_failure() {
        let spec = MutexSpec::rmw(2, 3).unwrap();
        let lock = RmwAnonLock::new(spec);
        let parts = lock.participants(&Adversary::Identity).unwrap();
        let (mut a, mut b) = {
            let mut it = parts.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        assert!(a.try_lock().is_some(), "uncontended try_lock succeeds");
        let guard = a.lock();
        assert!(b.try_lock_for(Duration::from_millis(10)).is_none());
        // The failed attempts withdrew: b owns nothing.
        assert!(lock
            .memory()
            .observe_all()
            .iter()
            .all(|s| !s.is_owned_by(b.pid())));
        drop(guard);
        assert!(b.try_lock().is_some());
    }

    #[test]
    fn counters_accumulate_per_participant() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let mut parts = RwAnonLock::with_participants(spec, &Adversary::Identity).unwrap();
        let p = &mut parts[0];
        {
            let _g = p.lock();
        }
        assert!(
            p.counters().snapshots() >= 4,
            "≥ m writes interleaved with snapshots"
        );
        assert!(p.counters().writes() >= 3 + 3, "3 claims + 3 erases");
    }

    #[test]
    #[should_panic(expected = "RW spec")]
    fn rw_lock_rejects_rmw_spec() {
        let _ = RwAnonLock::new(MutexSpec::rmw(2, 3).unwrap());
    }

    #[test]
    #[should_panic(expected = "RMW spec")]
    fn rmw_lock_rejects_rw_spec() {
        let _ = RmwAnonLock::new(MutexSpec::rw(2, 3).unwrap());
    }
}
