//! Blocking locks over real atomic registers.
//!
//! [`RwAnonLock`] (Algorithm 1) and [`RmwAnonLock`] (Algorithm 2) drive
//! the *same* automata that the simulator model-checks, but over the
//! lock-free arrays of `amx-registers`, one OS thread per process.  Each
//! competing thread owns a participant object; `lock()` spins the
//! automaton until it acquires and returns an RAII guard whose drop runs
//! the (wait-free) unlock protocol.
//!
//! # Example
//!
//! ```
//! use amx_core::spec::MutexSpec;
//! use amx_core::threaded::RmwAnonLock;
//! use amx_registers::Adversary;
//!
//! let spec = MutexSpec::rmw(2, 3)?;
//! let mut participants = RmwAnonLock::create(spec, &Adversary::Random(1))?;
//! let mut p = participants.remove(0);
//! {
//!     let _guard = p.lock();
//!     // …critical section…
//! } // guard drop runs unlock()
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use amx_ids::{Pid, PidPool, Slot};
use amx_registers::adversary::AdversaryError;
use amx_registers::{Adversary, AnonymousRmwMemory, AnonymousRwMemory, OpCounters};
use amx_sim::automaton::{Automaton, Outcome};
use amx_sim::mem::MemoryOps;

use crate::adapter::{RmwMemoryOps, RwMemoryOps};
use crate::alg1::{Alg1Automaton, Alg1State};
use crate::alg2::{Alg2Automaton, Alg2State};
use crate::policy::FreeSlotPolicy;
use crate::spec::{Model, MutexSpec};

/// How often a spinning participant yields to the OS scheduler.
const YIELD_EVERY: u64 = 64;

fn spin_pause(step: u64) {
    if step.is_multiple_of(YIELD_EVERY) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// The Algorithm 1 lock object: an anonymous RW register array shared by
/// `n` participants.
#[derive(Debug, Clone)]
pub struct RwAnonLock {
    mem: AnonymousRwMemory,
    spec: MutexSpec,
}

impl RwAnonLock {
    /// Creates the lock object for a validated RW spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RW-model spec.
    #[must_use]
    pub fn new(spec: MutexSpec) -> Self {
        assert_eq!(spec.model(), Model::Rw, "RwAnonLock needs an RW spec");
        RwAnonLock {
            mem: AnonymousRwMemory::new(spec.m()),
            spec,
        }
    }

    /// One-call setup: lock object + one participant per process, with
    /// identities minted internally and permutations drawn from
    /// `adversary`.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn create(
        spec: MutexSpec,
        adversary: &Adversary,
    ) -> Result<Vec<RwParticipant>, AdversaryError> {
        RwAnonLock::new(spec).participants(adversary)
    }

    /// The validated configuration.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.spec
    }

    /// Omniscient view of the register array (harness/diagnostics).
    #[must_use]
    pub fn memory(&self) -> &AnonymousRwMemory {
        &self.mem
    }

    /// Builds one participant per process with fresh identities and
    /// `adversary`-chosen permutations.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn participants(
        &self,
        adversary: &Adversary,
    ) -> Result<Vec<RwParticipant>, AdversaryError> {
        let perms = adversary.permutations(self.spec.n(), self.spec.m())?;
        let mut pool = PidPool::sequential();
        Ok(perms
            .into_iter()
            .map(|perm| {
                let id = pool.mint();
                let counters = OpCounters::new();
                let handle = self.mem.handle_with_counters(id, perm, counters.clone());
                RwParticipant {
                    automaton: Alg1Automaton::new(self.spec, id),
                    state: Alg1State::Idle,
                    ops: RwMemoryOps::new(handle),
                    counters,
                    entries: 0,
                }
            })
            .collect())
    }
}

/// One process's endpoint of an [`RwAnonLock`].  Move it into the thread
/// that plays this process.
#[derive(Debug)]
pub struct RwParticipant {
    automaton: Alg1Automaton,
    state: Alg1State,
    ops: RwMemoryOps,
    counters: OpCounters,
    entries: u64,
}

impl RwParticipant {
    /// This participant's (symmetric) identity.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.automaton.id()
    }

    /// Cumulative shared-memory operation counters for this participant.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Critical sections entered so far.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Sets the free-register policy (Algorithm 1 line 6 choice).
    #[must_use]
    pub fn with_policy(mut self, policy: FreeSlotPolicy) -> Self {
        self.automaton = self.automaton.with_policy(policy);
        self
    }

    /// Acquires the lock, spinning until this process wins all `m`
    /// registers; returns the critical-section guard.
    ///
    /// Resumes a competition left pending by an exhausted
    /// [`try_lock_steps`](Self::try_lock_steps).
    pub fn lock(&mut self) -> RwGuard<'_> {
        if self.state == Alg1State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        let mut step = 0u64;
        loop {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                self.entries += 1;
                return RwGuard { participant: self };
            }
            step += 1;
            spin_pause(step);
        }
    }

    /// Bounded acquisition attempt: runs at most `max_steps` automaton
    /// steps.  On `None` the process is **still competing** (it may own
    /// registers); call `lock` to finish or [`withdraw`](Self::withdraw)
    /// to leave the competition cleanly.
    pub fn try_lock_steps(&mut self, max_steps: u64) -> Option<RwGuard<'_>> {
        if self.state == Alg1State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        for _ in 0..max_steps {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                self.entries += 1;
                return Some(RwGuard { participant: self });
            }
        }
        None
    }

    /// Abandons a pending competition: erases this process's identity
    /// from every register it still holds (one shrink pass — sufficient,
    /// since no other process ever writes this identity).
    pub fn withdraw(&mut self) {
        let snap = self.ops.snapshot();
        for x in amx_ids::view::owned_indices(&snap, self.id()) {
            if self.ops.read(x).is_owned_by(self.id()) {
                self.ops.write(x, Slot::BOTTOM);
            }
        }
        self.state = Alg1State::Idle;
    }

    fn run_unlock(&mut self) {
        self.automaton.start_unlock(&mut self.state);
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Released {
            step += 1;
            spin_pause(step);
        }
    }
}

/// RAII critical-section guard for Algorithm 1.
///
/// Dropping the guard runs `unlock()` — a wait-free bounded loop
/// (at most one read and one write per register), so the destructor
/// cannot block indefinitely.
#[derive(Debug)]
pub struct RwGuard<'a> {
    participant: &'a mut RwParticipant,
}

impl RwGuard<'_> {
    /// The identity holding the critical section.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.participant.id()
    }

    /// Explicit unlock (equivalent to dropping the guard).
    pub fn unlock(self) {}
}

impl Drop for RwGuard<'_> {
    fn drop(&mut self) {
        self.participant.run_unlock();
    }
}

/// The Algorithm 2 lock object: an anonymous RMW register array shared by
/// `n` participants.
#[derive(Debug, Clone)]
pub struct RmwAnonLock {
    mem: AnonymousRmwMemory,
    spec: MutexSpec,
}

impl RmwAnonLock {
    /// Creates the lock object for a validated RMW spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not an RMW-model spec.
    #[must_use]
    pub fn new(spec: MutexSpec) -> Self {
        assert_eq!(spec.model(), Model::Rmw, "RmwAnonLock needs an RMW spec");
        RmwAnonLock {
            mem: AnonymousRmwMemory::new(spec.m()),
            spec,
        }
    }

    /// One-call setup mirroring [`RwAnonLock::create`].
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn create(
        spec: MutexSpec,
        adversary: &Adversary,
    ) -> Result<Vec<RmwParticipant>, AdversaryError> {
        RmwAnonLock::new(spec).participants(adversary)
    }

    /// The validated configuration.
    #[must_use]
    pub fn spec(&self) -> MutexSpec {
        self.spec
    }

    /// Omniscient view of the register array (harness/diagnostics).
    #[must_use]
    pub fn memory(&self) -> &AnonymousRmwMemory {
        &self.mem
    }

    /// Builds one participant per process with fresh identities and
    /// `adversary`-chosen permutations.
    ///
    /// # Errors
    ///
    /// Propagates adversary materialization failures.
    pub fn participants(
        &self,
        adversary: &Adversary,
    ) -> Result<Vec<RmwParticipant>, AdversaryError> {
        let perms = adversary.permutations(self.spec.n(), self.spec.m())?;
        let mut pool = PidPool::sequential();
        Ok(perms
            .into_iter()
            .map(|perm| {
                let id = pool.mint();
                let counters = OpCounters::new();
                let handle = self.mem.handle_with_counters(id, perm, counters.clone());
                RmwParticipant {
                    automaton: Alg2Automaton::new(self.spec, id),
                    state: Alg2State::Idle,
                    ops: RmwMemoryOps::new(handle),
                    counters,
                    entries: 0,
                }
            })
            .collect())
    }
}

/// One process's endpoint of an [`RmwAnonLock`].
#[derive(Debug)]
pub struct RmwParticipant {
    automaton: Alg2Automaton,
    state: Alg2State,
    ops: RmwMemoryOps,
    counters: OpCounters,
    entries: u64,
}

impl RmwParticipant {
    /// This participant's (symmetric) identity.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.automaton.id()
    }

    /// Cumulative shared-memory operation counters for this participant.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Critical sections entered so far.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Acquires the lock, spinning until this process owns a majority of
    /// the registers; returns the critical-section guard.
    pub fn lock(&mut self) -> RmwGuard<'_> {
        if self.state == Alg2State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        let mut step = 0u64;
        loop {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                self.entries += 1;
                return RmwGuard { participant: self };
            }
            step += 1;
            spin_pause(step);
        }
    }

    /// Bounded acquisition attempt; see
    /// [`RwParticipant::try_lock_steps`].
    pub fn try_lock_steps(&mut self, max_steps: u64) -> Option<RmwGuard<'_>> {
        if self.state == Alg2State::Idle {
            self.automaton.start_lock(&mut self.state);
        }
        for _ in 0..max_steps {
            if self.automaton.step(&mut self.state, &mut self.ops) == Outcome::Acquired {
                self.entries += 1;
                return Some(RmwGuard { participant: self });
            }
        }
        None
    }

    /// Abandons a pending competition, erasing this process's claims.
    pub fn withdraw(&mut self) {
        for x in 0..self.ops.m() {
            let _ = self
                .ops
                .compare_and_swap(x, Slot::from(self.id()), Slot::BOTTOM);
        }
        self.state = Alg2State::Idle;
    }

    fn run_unlock(&mut self) {
        self.automaton.start_unlock(&mut self.state);
        let mut step = 0u64;
        while self.automaton.step(&mut self.state, &mut self.ops) != Outcome::Released {
            step += 1;
            spin_pause(step);
        }
    }
}

/// RAII critical-section guard for Algorithm 2.
///
/// Dropping the guard runs `unlock()` — one `compare&swap` per register,
/// wait-free.
#[derive(Debug)]
pub struct RmwGuard<'a> {
    participant: &'a mut RmwParticipant,
}

impl RmwGuard<'_> {
    /// The identity holding the critical section.
    #[must_use]
    pub fn id(&self) -> Pid {
        self.participant.id()
    }

    /// Explicit unlock (equivalent to dropping the guard).
    pub fn unlock(self) {}
}

impl Drop for RmwGuard<'_> {
    fn drop(&mut self) {
        self.participant.run_unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn rw_solo_lock_unlock() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let lock = RwAnonLock::new(spec);
        let mut parts = lock.participants(&Adversary::Identity).unwrap();
        {
            let expect_id = parts[0].id();
            let guard = parts[0].lock();
            assert_eq!(guard.id(), expect_id);
            assert!(lock.memory().observe_all().iter().all(|s| !s.is_bottom()));
        }
        assert!(lock.memory().observe_all().iter().all(|s| s.is_bottom()));
        assert_eq!(parts[0].entries(), 1);
    }

    #[test]
    fn rmw_solo_lock_unlock() {
        let spec = MutexSpec::rmw(2, 3).unwrap();
        let lock = RmwAnonLock::new(spec);
        let mut parts = lock.participants(&Adversary::Identity).unwrap();
        {
            let holder = parts[1].id();
            let _guard = parts[1].lock();
            let owned = lock
                .memory()
                .observe_all()
                .iter()
                .filter(|s| s.is_owned_by(holder))
                .count();
            assert!(owned * 2 > 3, "majority held in CS");
        }
        assert!(lock.memory().observe_all().iter().all(|s| s.is_bottom()));
    }

    #[test]
    fn rw_two_threads_exclusion_and_counter() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let participants = RwAnonLock::create(spec, &Adversary::Random(7)).unwrap();
        let counter = AtomicU64::new(0);
        let in_cs = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let (counter, in_cs) = (&counter, &in_cs);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = p.lock();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                        counter.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn rmw_three_threads_exclusion_and_counter() {
        let spec = MutexSpec::rmw(3, 5).unwrap();
        let participants = RmwAnonLock::create(spec, &Adversary::Random(3)).unwrap();
        let counter = AtomicU64::new(0);
        let in_cs = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let (counter, in_cs) = (&counter, &in_cs);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = p.lock();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                        counter.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn rmw_single_register_two_threads() {
        // The degenerate m = 1 configuration: a pure CAS lock.
        let spec = MutexSpec::rmw(2, 1).unwrap();
        let participants = RmwAnonLock::create(spec, &Adversary::Identity).unwrap();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for mut p in participants {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..100 {
                        let _g = p.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn try_lock_steps_can_fail_then_withdraw() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let lock = RwAnonLock::new(spec);
        let parts = lock.participants(&Adversary::Identity).unwrap();
        let (mut a, mut b) = {
            let mut it = parts.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        let guard = a.lock();
        // b cannot acquire while a holds everything.
        assert!(b.try_lock_steps(100).is_none());
        b.withdraw();
        assert!(lock
            .memory()
            .observe_all()
            .iter()
            .all(|s| !s.is_owned_by(b.id())));
        drop(guard);
        // Now b succeeds.
        let g = b.lock();
        drop(g);
        assert_eq!(b.entries(), 1);
    }

    #[test]
    fn counters_accumulate_per_participant() {
        let spec = MutexSpec::rw(2, 3).unwrap();
        let mut parts = RwAnonLock::create(spec, &Adversary::Identity).unwrap();
        let p = &mut parts[0];
        {
            let _g = p.lock();
        }
        assert!(
            p.counters().snapshots() >= 4,
            "≥ m writes interleaved with snapshots"
        );
        assert!(p.counters().writes() >= 3 + 3, "3 claims + 3 erases");
    }

    #[test]
    #[should_panic(expected = "RW spec")]
    fn rw_lock_rejects_rmw_spec() {
        let _ = RwAnonLock::new(MutexSpec::rmw(2, 3).unwrap());
    }

    #[test]
    #[should_panic(expected = "RMW spec")]
    fn rmw_lock_rejects_rw_spec() {
        let _ = RmwAnonLock::new(MutexSpec::rw(2, 3).unwrap());
    }
}
