//! Per-entry cost summaries for the complexity experiments.
//!
//! The paper's conclusion contrasts the two algorithms by "the number of
//! registers which must contain the identity of a process to allow it to
//! enter the critical section" — all `m` for Algorithm 1 versus a
//! majority for Algorithm 2.  [`EntryCosts`] turns raw operation counters
//! into per-critical-section-entry averages so experiment C1 can report
//! the measured difference.

use std::fmt;

use amx_registers::OpCounters;

/// Average shared-memory work per critical-section entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryCosts {
    /// Critical-section entries the averages are over.
    pub entries: u64,
    /// Atomic register reads per entry (includes reads inside snapshots).
    pub reads_per_entry: f64,
    /// Atomic register writes per entry.
    pub writes_per_entry: f64,
    /// `compare&swap` invocations per entry.
    pub cas_per_entry: f64,
    /// Completed snapshot operations per entry.
    pub snapshots_per_entry: f64,
    /// Collect rounds per snapshot (double-collect retries; 2.0 is the
    /// contention-free minimum).
    pub collect_rounds_per_snapshot: f64,
}

impl EntryCosts {
    /// Summarizes `counters` over `entries` critical-section entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    #[must_use]
    pub fn summarize(counters: &OpCounters, entries: u64) -> Self {
        assert!(entries > 0, "cannot average over zero entries");
        let e = entries as f64;
        let snaps = counters.snapshots();
        EntryCosts {
            entries,
            reads_per_entry: counters.reads() as f64 / e,
            writes_per_entry: counters.writes() as f64 / e,
            cas_per_entry: counters.cas_ops() as f64 / e,
            snapshots_per_entry: snaps as f64 / e,
            collect_rounds_per_snapshot: if snaps == 0 {
                0.0
            } else {
                counters.collect_rounds() as f64 / snaps as f64
            },
        }
    }

    /// Total primitive operations (reads + writes + CAS) per entry.
    #[must_use]
    pub fn primitive_ops_per_entry(&self) -> f64 {
        self.reads_per_entry + self.writes_per_entry + self.cas_per_entry
    }
}

impl fmt::Display for EntryCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries: {:.1} reads, {:.1} writes, {:.1} cas, {:.2} snapshots per entry \
             ({:.2} collect rounds/snapshot)",
            self.entries,
            self.reads_per_entry,
            self.writes_per_entry,
            self.cas_per_entry,
            self.snapshots_per_entry,
            self.collect_rounds_per_snapshot,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_divides_by_entries() {
        let c = OpCounters::new();
        for _ in 0..30 {
            c.record_read();
        }
        for _ in 0..10 {
            c.record_write();
        }
        for _ in 0..5 {
            c.record_cas();
        }
        for _ in 0..4 {
            c.record_snapshot();
        }
        for _ in 0..10 {
            c.record_collect_round();
        }
        let s = EntryCosts::summarize(&c, 10);
        assert_eq!(s.reads_per_entry, 3.0);
        assert_eq!(s.writes_per_entry, 1.0);
        assert_eq!(s.cas_per_entry, 0.5);
        assert_eq!(s.snapshots_per_entry, 0.4);
        assert_eq!(s.collect_rounds_per_snapshot, 2.5);
        assert_eq!(s.primitive_ops_per_entry(), 4.5);
    }

    #[test]
    fn zero_snapshots_reports_zero_rounds() {
        let c = OpCounters::new();
        c.record_cas();
        let s = EntryCosts::summarize(&c, 1);
        assert_eq!(s.collect_rounds_per_snapshot, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let c = OpCounters::new();
        c.record_read();
        let text = EntryCosts::summarize(&c, 1).to_string();
        assert!(text.contains("entries"));
        assert!(text.contains("reads"));
    }

    #[test]
    #[should_panic(expected = "zero entries")]
    fn zero_entries_panics() {
        let _ = EntryCosts::summarize(&OpCounters::new(), 0);
    }
}
