//! Validated `(n, m)` configurations.
//!
//! The paper's headline result is that the memory size `m` admits
//! symmetric deadlock-free mutual exclusion **iff**
//!
//! * RW model: `m ∈ M(n)` and `m ≥ n` (equivalently `m ∈ M(n) \ {1}`),
//! * RMW model: `m ∈ M(n)`,
//!
//! where `M(n) = { m : ∀ ℓ, 1 < ℓ ≤ n : gcd(ℓ, m) = 1 }`.  A
//! [`MutexSpec`] is a proof-carrying pair: constructing one through
//! [`MutexSpec::rw`]/[`MutexSpec::rmw`] guarantees the corresponding
//! condition, so the algorithms never run on configurations where the
//! paper's theorems do not apply.  The `_unchecked` constructors exist so
//! the lower-bound experiments can deliberately build invalid
//! configurations.

use std::fmt;

use amx_numth::{is_valid_m, smallest_valid_m, smallest_witness};

/// The register-count bound imposed by the word-sized ownership bitmasks
/// used in the automata states.
pub const MAX_REGISTERS: usize = 64;

/// Why a `(n, m)` pair is not a valid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Fewer than two processes — mutual exclusion is trivial and the
    /// paper's model assumes `n ≥ 2`.
    TooFewProcesses {
        /// The offending process count.
        n: usize,
    },
    /// `m ∉ M(n)`: some `ℓ ≤ n` shares a factor with `m`.
    NotInMn {
        /// Memory size.
        m: usize,
        /// Process count.
        n: usize,
        /// The smallest `ℓ` with `1 < ℓ ≤ n` dividing `m` (always prime).
        witness: u64,
    },
    /// RW model additionally requires `m ≥ n` (Burns–Lynch).
    TooFewRegisters {
        /// Memory size.
        m: usize,
        /// Process count.
        n: usize,
    },
    /// `m` exceeds [`MAX_REGISTERS`].
    TooManyRegisters {
        /// Memory size.
        m: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TooFewProcesses { n } => {
                write!(f, "mutual exclusion needs at least 2 processes, got {n}")
            }
            SpecError::NotInMn { m, n, witness } => write!(
                f,
                "m = {m} is not in M({n}): ℓ = {witness} divides it, so gcd(ℓ, m) ≠ 1"
            ),
            SpecError::TooFewRegisters { m, n } => write!(
                f,
                "the RW model needs m ≥ n registers (Burns–Lynch), got m = {m} < n = {n}"
            ),
            SpecError::TooManyRegisters { m } => write!(
                f,
                "m = {m} exceeds the supported maximum of {MAX_REGISTERS} registers"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Which anonymous-register family a configuration targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Atomic read/write registers (Algorithm 1).
    Rw,
    /// Read/modify/write registers (Algorithm 2).
    Rmw,
}

/// A validated `(n, m)` configuration for one of the two models.
///
/// # Example
///
/// ```
/// use amx_core::spec::MutexSpec;
///
/// assert!(MutexSpec::rw(3, 5).is_ok());
/// assert!(MutexSpec::rw(3, 6).is_err());   // gcd(2, 6) ≠ 1
/// assert!(MutexSpec::rw(3, 3).is_err());   // gcd(3, 3) ≠ 1 — and m ≥ n alone is not enough
/// assert!(MutexSpec::rmw(3, 1).is_ok());   // m = 1 is valid in the RMW model
/// assert!(MutexSpec::rw(3, 1).is_err());
/// assert_eq!(MutexSpec::smallest_rw(6).unwrap().m(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutexSpec {
    n: usize,
    m: usize,
    model: Model,
}

impl MutexSpec {
    /// Validates a configuration for the RW model (Algorithm 1):
    /// `n ≥ 2`, `m ∈ M(n)`, `m ≥ n`, `m ≤ 64`.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SpecError`] describing the violated
    /// condition.
    pub fn rw(n: usize, m: usize) -> Result<Self, SpecError> {
        Self::validate_common(n, m)?;
        if m < n {
            return Err(SpecError::TooFewRegisters { m, n });
        }
        Ok(MutexSpec {
            n,
            m,
            model: Model::Rw,
        })
    }

    /// Validates a configuration for the RMW model (Algorithm 2):
    /// `n ≥ 2`, `m ∈ M(n)`, `m ≤ 64`.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SpecError`] describing the violated
    /// condition.
    pub fn rmw(n: usize, m: usize) -> Result<Self, SpecError> {
        Self::validate_common(n, m)?;
        Ok(MutexSpec {
            n,
            m,
            model: Model::Rmw,
        })
    }

    fn validate_common(n: usize, m: usize) -> Result<(), SpecError> {
        if n < 2 {
            return Err(SpecError::TooFewProcesses { n });
        }
        if m > MAX_REGISTERS {
            return Err(SpecError::TooManyRegisters { m });
        }
        if !is_valid_m(m as u64, n as u64) {
            let witness = smallest_witness(m as u64, n as u64).unwrap_or(0);
            return Err(SpecError::NotInMn { m, n, witness });
        }
        Ok(())
    }

    /// The smallest valid RW configuration for `n` processes:
    /// `m` is the smallest prime greater than `n`.
    ///
    /// # Errors
    ///
    /// Fails for `n < 2` or when that prime exceeds [`MAX_REGISTERS`].
    pub fn smallest_rw(n: usize) -> Result<Self, SpecError> {
        if n < 2 {
            return Err(SpecError::TooFewProcesses { n });
        }
        Self::rw(n, smallest_valid_m(n as u64) as usize)
    }

    /// The smallest *non-degenerate* RMW configuration (`m > 1`); use
    /// [`MutexSpec::rmw`]`(n, 1)` explicitly for the single-register
    /// configuration.
    ///
    /// # Errors
    ///
    /// Fails for `n < 2` or when the size exceeds [`MAX_REGISTERS`].
    pub fn smallest_rmw(n: usize) -> Result<Self, SpecError> {
        if n < 2 {
            return Err(SpecError::TooFewProcesses { n });
        }
        Self::rmw(n, smallest_valid_m(n as u64) as usize)
    }

    /// Builds an RW spec **without** validating the paper's conditions
    /// (still bounds-checks `n ≥ 1`, `1 ≤ m ≤ 64`).
    ///
    /// For lower-bound experiments that deliberately run the algorithm
    /// outside its correctness envelope.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0` or `m > 64`.
    #[must_use]
    pub fn rw_unchecked(n: usize, m: usize) -> Self {
        assert!(
            n >= 1 && (1..=MAX_REGISTERS).contains(&m),
            "bounds: 1 ≤ n, 1 ≤ m ≤ 64"
        );
        MutexSpec {
            n,
            m,
            model: Model::Rw,
        }
    }

    /// RMW analogue of [`MutexSpec::rw_unchecked`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `m == 0` or `m > 64`.
    #[must_use]
    pub fn rmw_unchecked(n: usize, m: usize) -> Self {
        assert!(
            n >= 1 && (1..=MAX_REGISTERS).contains(&m),
            "bounds: 1 ≤ n, 1 ≤ m ≤ 64"
        );
        MutexSpec {
            n,
            m,
            model: Model::Rmw,
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of anonymous registers.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The register family.
    #[must_use]
    pub fn model(&self) -> Model {
        self.model
    }

    /// `true` when this spec satisfies the paper's condition for its
    /// model (always true for checked constructors).
    #[must_use]
    pub fn is_paper_valid(&self) -> bool {
        let ok_mn = is_valid_m(self.m as u64, self.n as u64);
        match self.model {
            Model::Rw => ok_mn && self.m >= self.n,
            Model::Rmw => ok_mn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_accepts_exactly_the_paper_condition() {
        for n in 2..=8usize {
            for m in 1..=40usize {
                let expect = amx_numth::is_valid_m_rw(m as u64, n as u64);
                assert_eq!(MutexSpec::rw(n, m).is_ok(), expect, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn rmw_accepts_exactly_mn() {
        for n in 2..=8usize {
            for m in 1..=40usize {
                let expect = amx_numth::is_valid_m(m as u64, n as u64);
                assert_eq!(MutexSpec::rmw(n, m).is_ok(), expect, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn error_variants_are_specific() {
        assert!(matches!(
            MutexSpec::rw(1, 3),
            Err(SpecError::TooFewProcesses { n: 1 })
        ));
        assert!(matches!(
            MutexSpec::rw(3, 6),
            Err(SpecError::NotInMn {
                m: 6,
                n: 3,
                witness: 2
            })
        ));
        assert!(matches!(
            MutexSpec::rw(3, 1),
            Err(SpecError::TooFewRegisters { m: 1, n: 3 })
        ));
        assert!(matches!(
            MutexSpec::rw(2, 65),
            Err(SpecError::TooManyRegisters { m: 65 })
        ));
        assert!(matches!(
            MutexSpec::rmw(2, 101),
            Err(SpecError::TooManyRegisters { .. })
        ));
    }

    #[test]
    fn rmw_allows_single_register() {
        let s = MutexSpec::rmw(5, 1).unwrap();
        assert_eq!(s.m(), 1);
        assert!(s.is_paper_valid());
    }

    #[test]
    fn smallest_specs() {
        assert_eq!(MutexSpec::smallest_rw(2).unwrap().m(), 3);
        assert_eq!(MutexSpec::smallest_rw(4).unwrap().m(), 5);
        assert_eq!(MutexSpec::smallest_rw(7).unwrap().m(), 11);
        assert_eq!(MutexSpec::smallest_rmw(4).unwrap().m(), 5);
        assert!(MutexSpec::smallest_rw(1).is_err());
    }

    #[test]
    fn unchecked_bypasses_number_theory_only() {
        let s = MutexSpec::rw_unchecked(3, 6);
        assert!(!s.is_paper_valid());
        assert_eq!((s.n(), s.m()), (3, 6));
        let s = MutexSpec::rmw_unchecked(2, 4);
        assert!(!s.is_paper_valid());
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn unchecked_still_bounds_checks() {
        let _ = MutexSpec::rw_unchecked(2, 0);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            SpecError::TooFewProcesses { n: 0 },
            SpecError::NotInMn {
                m: 6,
                n: 4,
                witness: 2,
            },
            SpecError::TooFewRegisters { m: 1, n: 3 },
            SpecError::TooManyRegisters { m: 100 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
